#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "arch/config.hpp"
#include "sched/schedule.hpp"
#include "util/math.hpp"
#include "util/rng.hpp"
#include "wear/policy.hpp"
#include "wear/rwl_math.hpp"
#include "wear/trace.hpp"
#include "wear/simulator.hpp"
#include "wear/usage_tracker.hpp"

namespace rota::wear {
namespace {

using util::precondition_error;

/// Naive reference: add a (possibly wrapping) space cell by cell.
void naive_add(util::Grid<std::int64_t>& grid, std::int64_t u, std::int64_t v,
               std::int64_t x, std::int64_t y, std::int64_t count) {
  const auto w = static_cast<std::int64_t>(grid.width());
  const auto h = static_cast<std::int64_t>(grid.height());
  for (std::int64_t dc = 0; dc < x; ++dc) {
    for (std::int64_t dr = 0; dr < y; ++dr) {
      grid(static_cast<std::size_t>((u + dc) % w),
           static_cast<std::size_t>((v + dr) % h)) += count;
    }
  }
}

// -------------------------------------------------------- usage tracker ----

TEST(UsageTracker, SimpleRectangle) {
  UsageTracker t(5, 4);
  t.add_space(1, 1, 2, 2, 3, false);
  const auto& u = t.usage();
  EXPECT_EQ(u.at(1, 1), 3);
  EXPECT_EQ(u.at(2, 2), 3);
  EXPECT_EQ(u.at(0, 0), 0);
  EXPECT_EQ(u.at(3, 1), 0);
  EXPECT_EQ(t.total_pe_allocations(), 3 * 2 * 2);
}

TEST(UsageTracker, WrapAroundBothAxes) {
  UsageTracker t(5, 4);
  t.add_space(4, 3, 3, 2, 1, true);  // wraps right and top
  const auto& u = t.usage();
  // Columns {4, 0, 1} × rows {3, 0} covered.
  for (std::int64_t c : {4, 0, 1})
    for (std::int64_t r : {3, 0})
      EXPECT_EQ(u.at(static_cast<std::size_t>(c),
                     static_cast<std::size_t>(r)),
                1)
          << c << ',' << r;
  EXPECT_EQ(u.at(2, 0), 0);
  EXPECT_EQ(u.at(4, 1), 0);
}

TEST(UsageTracker, MeshRejectsWrap) {
  UsageTracker t(5, 4);
  EXPECT_THROW(t.add_space(4, 0, 2, 1, 1, false), precondition_error);
  EXPECT_THROW(t.add_space(0, 3, 1, 2, 1, false), precondition_error);
  EXPECT_NO_THROW(t.add_space(3, 2, 2, 2, 1, false));
}

TEST(UsageTracker, RejectsOutOfRangeArguments) {
  UsageTracker t(5, 4);
  EXPECT_THROW(t.add_space(-1, 0, 1, 1, 1, true), precondition_error);
  EXPECT_THROW(t.add_space(0, 4, 1, 1, 1, true), precondition_error);
  EXPECT_THROW(t.add_space(0, 0, 6, 1, 1, true), precondition_error);
  EXPECT_THROW(t.add_space(0, 0, 1, 5, 1, true), precondition_error);
  EXPECT_THROW(t.add_space(0, 0, 1, 1, -1, true), precondition_error);
}

TEST(UsageTracker, ZeroCountIsNoOp) {
  UsageTracker t(3, 3);
  t.add_space(0, 0, 2, 2, 0, true);
  EXPECT_EQ(t.stats().max, 0);
  EXPECT_EQ(t.total_pe_allocations(), 0);
}

TEST(UsageTracker, UniformAddition) {
  UsageTracker t(3, 2);
  t.add_uniform(7);
  t.add_space(0, 0, 1, 1, 2, false);
  EXPECT_EQ(t.usage().at(0, 0), 9);
  EXPECT_EQ(t.usage().at(2, 1), 7);
  EXPECT_EQ(t.total_pe_allocations(), 7 * 6 + 2);
}

TEST(UsageTracker, ClearResets) {
  UsageTracker t(3, 2);
  t.add_space(0, 0, 3, 2, 5, false);
  t.add_uniform(1);
  t.clear();
  EXPECT_EQ(t.stats().max, 0);
  EXPECT_EQ(t.total_pe_allocations(), 0);
}

TEST(UsageTracker, StatsBasics) {
  UsageTracker t(2, 2);
  t.add_space(0, 0, 1, 1, 10, false);
  t.add_space(1, 1, 1, 1, 4, false);
  const UsageStats s = t.stats();
  EXPECT_EQ(s.max, 10);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max_diff, 10);
  EXPECT_TRUE(std::isinf(s.r_diff));  // min == 0
  EXPECT_DOUBLE_EQ(s.mean, 14.0 / 4.0);
}

TEST(UsageTracker, RDiffFiniteWhenMinPositive) {
  UsageTracker t(2, 1);
  t.add_space(0, 0, 2, 1, 4, false);
  t.add_space(1, 0, 1, 1, 1, false);
  const UsageStats s = t.stats();
  EXPECT_EQ(s.min, 4);
  EXPECT_EQ(s.max_diff, 1);
  EXPECT_DOUBLE_EQ(s.r_diff, 0.25);
}

TEST(UsageTracker, PerfectlyLevelHasZeroRDiff) {
  UsageTracker t(4, 4);
  t.add_uniform(9);
  EXPECT_DOUBLE_EQ(t.stats().r_diff, 0.0);
  EXPECT_EQ(t.stats().max_diff, 0);
}

/// Property: the difference-array implementation matches the naive
/// per-cell reference for random wrapped placements.
TEST(UsageTracker, MatchesNaiveReferenceOnRandomPlacements) {
  util::SplitMix64 rng(2024);
  for (int trial = 0; trial < 200; ++trial) {
    const std::int64_t w = 1 + static_cast<std::int64_t>(rng.next_below(12));
    const std::int64_t h = 1 + static_cast<std::int64_t>(rng.next_below(12));
    UsageTracker t(w, h);
    util::Grid<std::int64_t> ref(static_cast<std::size_t>(w),
                                 static_cast<std::size_t>(h));
    for (int i = 0; i < 30; ++i) {
      const std::int64_t u =
          static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(w)));
      const std::int64_t v =
          static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(h)));
      const std::int64_t x =
          1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(w)));
      const std::int64_t y =
          1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(h)));
      const std::int64_t count =
          static_cast<std::int64_t>(rng.next_below(4));
      t.add_space(u, v, x, y, count, true);
      naive_add(ref, u, v, x, y, count);
    }
    EXPECT_TRUE(t.usage() == ref) << "trial " << trial;
  }
}

TEST(UsageTracker, AddSpacesMatchesPerTileAddSpace) {
  util::SplitMix64 rng(3131);
  for (int trial = 0; trial < 100; ++trial) {
    const std::int64_t w = 1 + static_cast<std::int64_t>(rng.next_below(12));
    const std::int64_t h = 1 + static_cast<std::int64_t>(rng.next_below(12));
    const std::int64_t x =
        1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(w)));
    const std::int64_t y =
        1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(h)));
    const std::int64_t weight =
        1 + static_cast<std::int64_t>(rng.next_below(5));
    std::vector<Placement> origins;
    const std::size_t tiles = 1 + rng.next_below(50);
    for (std::size_t i = 0; i < tiles; ++i) {
      origins.push_back(
          {static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(w))),
           static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(h)))});
    }
    UsageTracker batched(w, h);
    UsageTracker reference(w, h);
    batched.add_spaces(origins.data(), origins.size(), x, y, weight, true);
    for (const Placement& at : origins) {
      reference.add_space(at.u, at.v, x, y, weight, true);
    }
    EXPECT_TRUE(batched.usage() == reference.usage()) << "trial " << trial;
    EXPECT_EQ(batched.total_pe_allocations(),
              reference.total_pe_allocations());
  }
}

TEST(UsageTracker, AddSpacesBadOriginLeavesTrackerUnchanged) {
  UsageTracker t(6, 6);
  t.add_space(1, 1, 2, 2, 3, true);
  const std::int64_t total = t.total_pe_allocations();
  const Placement origins[] = {{0, 0}, {2, 2}, {6, 0}};  // last out of range
  EXPECT_THROW(t.add_spaces(origins, 3, 2, 2, 1, true), precondition_error);
  EXPECT_EQ(t.total_pe_allocations(), total);
  EXPECT_EQ(t.stats().max, 3);  // only the original space is recorded
}

TEST(UsageTracker, AddSpacesOverflowThrowsBeforeMutation) {
  UsageTracker t(4, 4);
  const std::int64_t huge = std::numeric_limits<std::int64_t>::max() / 2;
  const Placement origins[] = {{0, 0}, {1, 1}};
  EXPECT_THROW(t.add_spaces(origins, 2, 2, 2, huge, true),
               util::invariant_error);
  EXPECT_EQ(t.total_pe_allocations(), 0);
  EXPECT_EQ(t.stats().max, 0);
}

TEST(UsageTracker, AmortizedBudgetStaysExactNearOverflow) {
  // Drive the counter close to INT64_MAX with add_uniform, then keep
  // allocating through the amortized add_space path: totals must stay
  // exact and the eventual overflow must still throw.
  UsageTracker t(2, 2);
  const std::int64_t near =
      std::numeric_limits<std::int64_t>::max() / 4 - 10;
  t.add_uniform(near);  // total = 4·near
  std::int64_t expected = 4 * near;
  for (int i = 0; i < 8; ++i) {
    t.add_space(0, 0, 1, 1, 1, true);  // slow or amortized path, both exact
    expected += 1;
    ASSERT_EQ(t.total_pe_allocations(), expected);
  }
  EXPECT_THROW(t.add_uniform(20), util::invariant_error);
  EXPECT_EQ(t.total_pe_allocations(), expected);
}

// ------------------------------------------------------------- RWL math ----

TEST(RwlMath, PaperWorkedExampleResNetC5) {
  // §IV-C / Fig. 5: ResNet C5 with 8×8 spaces and Z = 32 tiles on the
  // 14×12 Eyeriss array: lcm(14,8) = 56, X = 7, W = 4, Y = 4, H_RWL = 2.
  const RwlDerived d = rwl_derive({14, 12, 8, 8, 32});
  EXPECT_EQ(d.strides_x, 7);
  EXPECT_EQ(d.unfold_w, 4);
  EXPECT_EQ(d.strides_y, 4);
  EXPECT_EQ(d.unfold_h, 2);
  EXPECT_EQ(d.d_max_bound, 5);  // W + 1
}

TEST(RwlMath, UnfoldIdentity) {
  // X·x == W·w == lcm(w, x) by construction.
  for (std::int64_t w : {5, 8, 12, 14, 16}) {
    for (std::int64_t x = 1; x <= w; ++x) {
      const RwlDerived d = rwl_derive({w, 12, x, 4, 100});
      EXPECT_EQ(d.strides_x * x, d.unfold_w * w);
    }
  }
}

TEST(RwlMath, DivisibleSpaceNeedsNoUnfolding) {
  // x | w → one pass across the array levels it: W = 1, X = w/x.
  const RwlDerived d = rwl_derive({12, 12, 4, 4, 9});
  EXPECT_EQ(d.strides_x, 3);
  EXPECT_EQ(d.unfold_w, 1);
}

TEST(RwlMath, ZeroTilesYieldsZeroCoverage) {
  // z = 0: no strides taken, nothing leveled, bound degenerates to 0.
  const RwlDerived d = rwl_derive({14, 12, 8, 8, 0});
  EXPECT_EQ(d.strides_x, 7);   // Eqs. (5)–(6) depend only on (w, x)
  EXPECT_EQ(d.unfold_w, 4);
  EXPECT_EQ(d.strides_y, 0);
  EXPECT_EQ(d.unfold_h, 0);
  EXPECT_EQ(d.min_a_pe, 0);
  EXPECT_DOUBLE_EQ(d.r_diff_bound, 0.0);
}

TEST(RwlMath, SpaceEqualToArrayIsSingleStride) {
  // x = w: lcm(w, w) = w, so one stride levels a whole band (X = W = 1)
  // and the bound collapses to D_max <= 2.
  const RwlDerived d = rwl_derive({14, 12, 14, 4, 33});
  EXPECT_EQ(d.strides_x, 1);
  EXPECT_EQ(d.unfold_w, 1);
  EXPECT_EQ(d.strides_y, 33);
  EXPECT_EQ(d.unfold_h, 33 * 4 / 12);
  EXPECT_EQ(d.d_max_bound, 2);

  // Cross-check against the naive per-tile simulator path.
  UsageTracker t(14, 12);
  auto policy = make_policy(PolicyKind::kRwl, 14, 12);
  const sched::UtilSpace space{14, 4};
  policy->begin_layer(space);
  for (std::int64_t i = 0; i < 33; ++i) {
    const Placement at = policy->next_origin(space);
    EXPECT_EQ(at.u, 0);  // full-width space can only anchor at column 0
    t.add_space(at.u, at.v, 14, 4, 1, true);
  }
  const UsageStats st = t.stats();
  EXPECT_LE(st.max_diff, d.d_max_bound);
  EXPECT_GE(st.min, d.min_a_pe);
}

TEST(RwlMath, NontrivialGcdCosetsMatchSimulator) {
  // gcd(w, x) = 4: the horizontal stride lattice has 4 cosets and only
  // w/gcd = 3 distinct origins per band; the closed forms must still
  // bound the simulated wear exactly.
  const RwlParams p{12, 10, 8, 4, 47};
  const RwlDerived d = rwl_derive(p);
  EXPECT_EQ(d.strides_x, 3);  // lcm(12,8)/8
  EXPECT_EQ(d.unfold_w, 2);   // lcm(12,8)/12
  EXPECT_EQ(period_tiles(p), (12 / 4) * (10 / 2));
  EXPECT_EQ(uniform_per_period(p), (8 / 4) * (4 / 2));

  UsageTracker t(12, 10);
  auto policy = make_policy(PolicyKind::kRwl, 12, 10);
  const sched::UtilSpace space{8, 4};
  policy->begin_layer(space);
  for (std::int64_t i = 0; i < p.z; ++i) {
    const Placement at = policy->next_origin(space);
    EXPECT_EQ(at.u % 4, 0);  // origins stay on the gcd-coset through 0
    t.add_space(at.u, at.v, 8, 4, 1, true);
  }
  const UsageStats st = t.stats();
  EXPECT_LE(st.max_diff, d.d_max_bound);
  EXPECT_GE(st.min, d.min_a_pe);
}

TEST(RwlMath, ArrayScalingSweepStaysExactUpToNearOverflow) {
  // Fig. 10 scales the array; push the same shapes to lcm magnitudes near
  // INT64_MAX. With w = 2^k and x = 2^k − 1 coprime, lcm = w·x ≈ 2^(2k);
  // the unfold identity X·x == W·w must hold exactly (no silent wrap).
  for (int k : {10, 20, 30, 31}) {
    const std::int64_t w = std::int64_t{1} << k;
    const RwlParams p{w, 12, w - 1, 8, 100};
    const RwlDerived d = rwl_derive(p);
    EXPECT_EQ(d.strides_x, w);      // lcm/(w−1)
    EXPECT_EQ(d.unfold_w, w - 1);   // lcm/w
    EXPECT_EQ(d.strides_x * (w - 1), d.unfold_w * w) << "k=" << k;
  }
  // One doubling further the lcm exceeds INT64_MAX: the math must throw
  // rather than report a wrapped (wrong) leveling bound.
  const std::int64_t w32 = std::int64_t{1} << 32;
  EXPECT_THROW((void)rwl_derive({w32, 12, w32 - 1, 8, 100}),
               util::invariant_error);
}

TEST(UsageTracker, AllocationCounterOverflowThrows) {
  // count·x·y beyond int64 must throw, not wrap the conservation counter.
  UsageTracker t(4, 4);
  const std::int64_t huge = std::numeric_limits<std::int64_t>::max() / 2;
  EXPECT_THROW(t.add_space(0, 0, 2, 2, huge, true), util::invariant_error);
  EXPECT_THROW(t.add_uniform(huge), util::invariant_error);
}

TEST(RwlMath, RejectsOversizedSpace) {
  EXPECT_THROW((void)rwl_derive({14, 12, 15, 8, 10}), precondition_error);
  EXPECT_THROW((void)rwl_derive({14, 12, 8, 13, 10}), precondition_error);
  EXPECT_THROW((void)rwl_derive({0, 12, 1, 1, 10}), precondition_error);
}

TEST(RwlMath, PeriodCoversLatticeOnce) {
  // period · x · y == uniform · w · h (total coverage consistency).
  util::SplitMix64 rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const std::int64_t w = 2 + static_cast<std::int64_t>(rng.next_below(20));
    const std::int64_t h = 2 + static_cast<std::int64_t>(rng.next_below(20));
    const std::int64_t x =
        1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(w)));
    const std::int64_t y =
        1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(h)));
    const RwlParams p{w, h, x, y, 1};
    EXPECT_EQ(period_tiles(p) * x * y, uniform_per_period(p) * w * h);
  }
}

/// Property (drives the fast-forward): one period of the stride policy,
/// started from ANY phase, covers every PE exactly uniform_per_period
/// times and returns the stride state to where it began.
TEST(RwlMath, PeriodIsUniformFromAnyPhase) {
  util::SplitMix64 rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    const std::int64_t w = 2 + static_cast<std::int64_t>(rng.next_below(14));
    const std::int64_t h = 2 + static_cast<std::int64_t>(rng.next_below(14));
    const std::int64_t x =
        1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(w)));
    const std::int64_t y =
        1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(h)));
    const RwlParams p{w, h, x, y, 0};
    const std::int64_t period = period_tiles(p);
    const std::int64_t phase =
        static_cast<std::int64_t>(rng.next_below(
            static_cast<std::uint64_t>(period)));

    auto policy = make_policy(PolicyKind::kRwlRo, w, h);
    const sched::UtilSpace space{x, y};
    policy->begin_layer(space);
    for (std::int64_t i = 0; i < phase; ++i) policy->next_origin(space);

    const Placement before = [&] {
      auto probe = policy->clone();
      return probe->next_origin(space);
    }();

    UsageTracker t(w, h);
    for (std::int64_t i = 0; i < period; ++i) {
      const Placement at = policy->next_origin(space);
      t.add_space(at.u, at.v, x, y, 1, true);
    }
    const UsageStats st = t.stats();
    EXPECT_EQ(st.max_diff, 0) << "w" << w << " h" << h << " x" << x << " y"
                              << y << " phase " << phase;
    EXPECT_EQ(st.min, uniform_per_period(p));

    const Placement after = [&] {
      auto probe = policy->clone();
      return probe->next_origin(space);
    }();
    EXPECT_EQ(before.u, after.u);
    EXPECT_EQ(before.v, after.v);
  }
}

/// Property (drives the sub-period wrapped fast-forward): from u == 0, one
/// X-sweep covers the band [v, v+y) exactly uniform_per_sweep times, every
/// other PE not at all, returns u to 0 and advances v by y exactly once.
TEST(RwlMath, SweepIsUniformBandFromColumnZero) {
  util::SplitMix64 rng(1234);
  for (int trial = 0; trial < 100; ++trial) {
    const std::int64_t w = 2 + static_cast<std::int64_t>(rng.next_below(14));
    const std::int64_t h = 2 + static_cast<std::int64_t>(rng.next_below(14));
    const std::int64_t x =
        1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(w)));
    const std::int64_t y =
        1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(h)));
    const RwlParams p{w, h, x, y, 0};
    const std::int64_t sweep = sweep_tiles(p);
    EXPECT_EQ(sweep * x, uniform_per_sweep(p) * w);  // coverage consistency

    // Walk one sweep per-tile from a fresh policy (u = 0, v = 0).
    auto policy = make_policy(PolicyKind::kRwl, w, h);
    const sched::UtilSpace space{x, y};
    policy->begin_layer(space);
    util::Grid<std::int64_t> grid(static_cast<std::size_t>(w),
                                  static_cast<std::size_t>(h));
    grid.fill(0);
    for (std::int64_t i = 0; i < sweep; ++i) {
      const Placement at = policy->next_origin(space);
      naive_add(grid, at.u, at.v, x, y, 1);
    }
    for (std::int64_t c = 0; c < w; ++c) {
      for (std::int64_t r = 0; r < h; ++r) {
        const std::int64_t expected =
            (r - 0 + h) % h < y ? uniform_per_sweep(p) : 0;
        ASSERT_EQ(grid(static_cast<std::size_t>(c),
                       static_cast<std::size_t>(r)),
                  expected)
            << "w" << w << " h" << h << " x" << x << " y" << y << " PE (" << c
            << "," << r << ")";
      }
    }
    const Placement next = policy->next_origin(space);
    EXPECT_EQ(next.u, 0);
    EXPECT_EQ(next.v, y % h);
  }
}

/// tiles_to_column_zero agrees with literally striding until u == 0, for
/// every on-lattice start column — including gcd(w, x) > 1 cosets.
TEST(RwlMath, TilesToColumnZeroMatchesStrideWalk) {
  util::SplitMix64 rng(4321);
  for (int trial = 0; trial < 200; ++trial) {
    const std::int64_t w = 2 + static_cast<std::int64_t>(rng.next_below(40));
    const std::int64_t x =
        1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(w)));
    const std::int64_t g = util::gcd(w, x);
    for (std::int64_t u = 0; u < w; u += g) {
      const std::int64_t k = tiles_to_column_zero(w, x, u);
      std::int64_t walked = 0;
      std::int64_t col = u;
      while (col != 0) {
        col = (col + x) % w;
        ++walked;
      }
      EXPECT_EQ(k, walked) << "w" << w << " x" << x << " u" << u;
    }
  }
}

TEST(RwlMath, TilesToColumnZeroRejectsOffLatticeColumn) {
  // gcd(14, 8) = 2: odd columns never reach 0.
  EXPECT_THROW((void)tiles_to_column_zero(14, 8, 5), precondition_error);
}

// ------------------------------------------------------------- policies ----

sched::LayerSchedule layer_of(std::int64_t x, std::int64_t y,
                              std::int64_t tiles, const char* name = "l") {
  sched::LayerSchedule ls;
  ls.layer_name = name;
  ls.space = sched::UtilSpace{x, y};
  ls.tiles = tiles;
  ls.compute_macs_per_pe = 1;
  ls.reduction_steps = 1;
  return ls;
}

TEST(Policy, BaselineAlwaysAnchorsAtOrigin) {
  auto p = make_policy(PolicyKind::kBaseline, 14, 12);
  const sched::UtilSpace space{5, 3};
  p->begin_layer(space);
  for (int i = 0; i < 10; ++i) {
    const Placement at = p->next_origin(space);
    EXPECT_EQ(at.u, 0);
    EXPECT_EQ(at.v, 0);
  }
  EXPECT_FALSE(p->requires_torus());
}

/// 1-indexed reference implementation transcribed verbatim from
/// Algorithm 1 of the paper: u ← (u + x − 1) % w + 1, and a vertical
/// stride when u == 1 (the origin loops back to the leftmost PE).
class Algorithm1Reference {
 public:
  Algorithm1Reference(std::int64_t w, std::int64_t h) : w_(w), h_(h) {}

  void begin_layer(std::int64_t x, std::int64_t y) {
    x_ = x;
    y_ = y;
  }

  Placement next() {
    const Placement at{u_ - 1, v_ - 1};  // convert to 0-indexed
    u_ = (u_ + x_ - 1) % w_ + 1;
    if (u_ == 1) v_ = (v_ + y_ - 1) % h_ + 1;
    return at;
  }

 private:
  std::int64_t w_;
  std::int64_t h_;
  std::int64_t x_ = 1;
  std::int64_t y_ = 1;
  std::int64_t u_ = 1;
  std::int64_t v_ = 1;
};

TEST(Policy, RwlRoMatchesAlgorithm1AcrossLayers) {
  util::SplitMix64 rng(4);
  const std::int64_t w = 14;
  const std::int64_t h = 12;
  auto policy = make_policy(PolicyKind::kRwlRo, w, h);
  Algorithm1Reference ref(w, h);
  for (int layer = 0; layer < 12; ++layer) {
    const std::int64_t x =
        1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(w)));
    const std::int64_t y =
        1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(h)));
    const std::int64_t z = 1 + static_cast<std::int64_t>(rng.next_below(60));
    const sched::UtilSpace space{x, y};
    policy->begin_layer(space);
    ref.begin_layer(x, y);
    for (std::int64_t i = 0; i < z; ++i) {
      const Placement got = policy->next_origin(space);
      const Placement want = ref.next();
      ASSERT_EQ(got.u, want.u) << "layer " << layer << " tile " << i;
      ASSERT_EQ(got.v, want.v) << "layer " << layer << " tile " << i;
    }
  }
}

TEST(Policy, RwlResetsEveryLayerButRwlRoDoesNot) {
  const sched::UtilSpace space{5, 4};
  auto rwl = make_policy(PolicyKind::kRwl, 14, 12);
  auto ro = make_policy(PolicyKind::kRwlRo, 14, 12);
  for (auto* p : {rwl.get(), ro.get()}) {
    p->begin_layer(space);
    for (int i = 0; i < 3; ++i) p->next_origin(space);
  }
  rwl->begin_layer(space);
  ro->begin_layer(space);
  const Placement r = rwl->next_origin(space);
  const Placement o = ro->next_origin(space);
  EXPECT_EQ(r.u, 0);
  EXPECT_EQ(r.v, 0);
  EXPECT_NE(o.u, 0);  // three 5-wide strides: u = 15 % 14 = 1
}

TEST(Policy, StrideSequenceMatchesPaperExample) {
  // w = 14, x = 8: origins 0, 8, 16%14=2, 10, 4, 12, 6, then back to 0
  // with a vertical stride — seven strides as X = lcm(14,8)/8 = 7.
  auto p = make_policy(PolicyKind::kRwl, 14, 12);
  const sched::UtilSpace space{8, 8};
  p->begin_layer(space);
  const std::int64_t expected_u[] = {0, 8, 2, 10, 4, 12, 6, 0};
  for (int i = 0; i < 8; ++i) {
    const Placement at = p->next_origin(space);
    EXPECT_EQ(at.u, expected_u[i]) << i;
    EXPECT_EQ(at.v, i < 7 ? 0 : 8);
  }
}

TEST(Policy, CloneIsIndependent) {
  auto p = make_policy(PolicyKind::kRwlRo, 14, 12);
  const sched::UtilSpace space{5, 4};
  p->begin_layer(space);
  p->next_origin(space);
  auto q = p->clone();
  const Placement a = p->next_origin(space);
  const Placement b = q->next_origin(space);
  EXPECT_EQ(a.u, b.u);
  EXPECT_EQ(a.v, b.v);
  p->next_origin(space);  // advancing p must not affect q
  const Placement c = q->next_origin(space);
  EXPECT_EQ(c.u, (b.u + 5) % 14);
}

TEST(Policy, RandomStartDeterministicPerSeed) {
  auto a = make_policy(PolicyKind::kRandomStart, 14, 12, 42);
  auto b = make_policy(PolicyKind::kRandomStart, 14, 12, 42);
  const sched::UtilSpace space{3, 3};
  for (int i = 0; i < 50; ++i) {
    const Placement pa = a->next_origin(space);
    const Placement pb = b->next_origin(space);
    EXPECT_EQ(pa.u, pb.u);
    EXPECT_EQ(pa.v, pb.v);
    EXPECT_GE(pa.u, 0);
    EXPECT_LT(pa.u, 14);
    EXPECT_GE(pa.v, 0);
    EXPECT_LT(pa.v, 12);
  }
}

TEST(Policy, ResetRestoresInitialSequence) {
  for (PolicyKind kind : {PolicyKind::kRwl, PolicyKind::kRwlRo,
                          PolicyKind::kRandomStart,
                          PolicyKind::kDiagonalStride}) {
    auto p = make_policy(kind, 14, 12, 7);
    const sched::UtilSpace space{5, 4};
    p->begin_layer(space);
    std::vector<Placement> first;
    for (int i = 0; i < 8; ++i) first.push_back(p->next_origin(space));
    p->reset();
    p->begin_layer(space);
    for (int i = 0; i < 8; ++i) {
      const Placement at = p->next_origin(space);
      EXPECT_EQ(at.u, first[static_cast<std::size_t>(i)].u) << to_string(kind);
      EXPECT_EQ(at.v, first[static_cast<std::size_t>(i)].v) << to_string(kind);
    }
  }
}

// ------------------------------------------------- paper bound properties ----

/// Eq. (9): after a fresh per-layer RWL pass, D_max <= W + 1; and Eq. (10)
/// never overestimates the simulated minimum usage.
TEST(RwlBounds, Eq9AndEq10HoldOnRandomConfigs) {
  util::SplitMix64 rng(123);
  for (int trial = 0; trial < 400; ++trial) {
    const std::int64_t w = 2 + static_cast<std::int64_t>(rng.next_below(30));
    const std::int64_t h = 2 + static_cast<std::int64_t>(rng.next_below(30));
    const std::int64_t x =
        1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(w)));
    const std::int64_t y =
        1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(h)));
    const std::int64_t z = 1 + static_cast<std::int64_t>(rng.next_below(2000));
    const RwlDerived d = rwl_derive({w, h, x, y, z});

    UsageTracker t(w, h);
    auto policy = make_policy(PolicyKind::kRwl, w, h);
    const sched::UtilSpace space{x, y};
    policy->begin_layer(space);
    for (std::int64_t i = 0; i < z; ++i) {
      const Placement at = policy->next_origin(space);
      t.add_space(at.u, at.v, x, y, 1, true);
    }
    const UsageStats st = t.stats();
    EXPECT_LE(st.max_diff, d.d_max_bound)
        << "w" << w << " h" << h << " x" << x << " y" << y << " z" << z;
    EXPECT_GE(st.min, d.min_a_pe)
        << "w" << w << " h" << h << " x" << x << " y" << y << " z" << z;
  }
}

// ---------------------------------------------------------------- trace ----

TEST(Trace, RecordsEveryPlacementInOrder) {
  auto traced = std::make_unique<TracingPolicy>(
      make_policy(PolicyKind::kRwlRo, 14, 12));
  const sched::UtilSpace space{8, 8};
  traced->begin_layer(space);
  for (int i = 0; i < 5; ++i) traced->next_origin(space);
  const auto& recs = traced->records();
  ASSERT_EQ(recs.size(), 5u);
  const std::int64_t expected_u[] = {0, 8, 2, 10, 4};
  for (std::size_t i = 0; i < recs.size(); ++i) {
    EXPECT_EQ(recs[i].tile_index, static_cast<std::int64_t>(i));
    EXPECT_EQ(recs[i].layer_index, 0);
    EXPECT_EQ(recs[i].u, expected_u[i]);
    EXPECT_EQ(recs[i].v, 0);
    EXPECT_EQ(recs[i].x, 8);
  }
}

TEST(Trace, LayerIndexAdvancesWithBeginLayer) {
  auto traced = std::make_unique<TracingPolicy>(
      make_policy(PolicyKind::kBaseline, 14, 12));
  const sched::UtilSpace space{3, 3};
  traced->begin_layer(space);
  traced->next_origin(space);
  traced->begin_layer(space);
  traced->next_origin(space);
  ASSERT_EQ(traced->records().size(), 2u);
  EXPECT_EQ(traced->records()[0].layer_index, 0);
  EXPECT_EQ(traced->records()[1].layer_index, 1);
}

TEST(Trace, TracedSimulationMatchesUntracedUsage) {
  // Tracing disables the fast path but must not change behavior.
  sched::NetworkSchedule ns;
  ns.config = arch::rota_like();
  ns.layers.push_back(layer_of(8, 8, 90, "a"));
  ns.layers.push_back(layer_of(5, 11, 33, "b"));

  WearSimulator plain_sim(arch::rota_like());
  auto plain = make_policy(PolicyKind::kRwlRo, 14, 12);
  plain_sim.run_iterations(ns, *plain, 2);

  WearSimulator traced_sim(arch::rota_like());
  TracingPolicy traced(make_policy(PolicyKind::kRwlRo, 14, 12));
  traced_sim.run_iterations(ns, traced, 2);

  EXPECT_TRUE(plain_sim.tracker().usage() == traced_sim.tracker().usage());
  EXPECT_EQ(traced.records().size(), 2u * (90 + 33));
}

TEST(Trace, CsvEmission) {
  TracingPolicy traced(make_policy(PolicyKind::kRwl, 14, 12));
  const sched::UtilSpace space{4, 4};
  traced.begin_layer(space);
  traced.next_origin(space);
  std::ostringstream os;
  write_trace_csv(traced.records(), os);
  EXPECT_EQ(os.str(), "tile,layer,x,y,u,v\n0,0,4,4,0,0\n");
}

TEST(Trace, CloneCarriesTraceState) {
  TracingPolicy traced(make_policy(PolicyKind::kRwlRo, 14, 12));
  const sched::UtilSpace space{4, 4};
  traced.begin_layer(space);
  traced.next_origin(space);
  auto copy = traced.clone();
  auto* copy_traced = dynamic_cast<TracingPolicy*>(copy.get());
  ASSERT_NE(copy_traced, nullptr);
  EXPECT_EQ(copy_traced->records().size(), 1u);
}

// ------------------------------------------------------------ simulator ----

sched::NetworkSchedule tiny_schedule(arch::AcceleratorConfig cfg) {
  sched::NetworkSchedule ns;
  ns.network_name = "tiny";
  ns.network_abbr = "tiny";
  ns.config = std::move(cfg);
  ns.layers.push_back(layer_of(8, 8, 32, "a"));
  ns.layers.push_back(layer_of(5, 12, 17, "b"));
  ns.layers.push_back(layer_of(14, 3, 9, "c"));
  return ns;
}

TEST(Simulator, MeshRejectsTorusPolicies) {
  WearSimulator sim(arch::eyeriss_like());
  auto policy = make_policy(PolicyKind::kRwlRo, 14, 12);
  const auto ns = tiny_schedule(arch::eyeriss_like());
  EXPECT_THROW(sim.run_iteration(ns, *policy), precondition_error);
}

TEST(Simulator, MeshAcceptsBaseline) {
  WearSimulator sim(arch::eyeriss_like());
  auto policy = make_policy(PolicyKind::kBaseline, 14, 12);
  const auto ns = tiny_schedule(arch::eyeriss_like());
  EXPECT_NO_THROW(sim.run_iteration(ns, *policy));
  EXPECT_EQ(sim.tracker().usage().at(0, 0), 32 + 17 + 9);
}

TEST(Simulator, RejectsMismatchedPolicyDimensions) {
  WearSimulator sim(arch::rota_like());
  auto policy = make_policy(PolicyKind::kRwlRo, 10, 10);
  const auto ns = tiny_schedule(arch::rota_like());
  EXPECT_THROW(sim.run_iteration(ns, *policy), precondition_error);
}

TEST(Simulator, SamplerCalledOncePerIteration) {
  WearSimulator sim(arch::rota_like());
  auto policy = make_policy(PolicyKind::kRwlRo, 14, 12);
  const auto ns = tiny_schedule(arch::rota_like());
  std::vector<std::int64_t> seen;
  sim.run_iterations(ns, *policy, 5,
                     [&](std::int64_t it, const UsageTracker&) {
                       seen.push_back(it);
                     });
  EXPECT_EQ(seen, (std::vector<std::int64_t>{1, 2, 3, 4, 5}));
}

/// The exact-periodicity fast-forward must be bit-identical to the naive
/// per-tile path for every policy that implements it.
TEST(Simulator, FastForwardMatchesNaivePath) {
  util::SplitMix64 rng(555);
  for (PolicyKind kind : {PolicyKind::kBaseline, PolicyKind::kRwl,
                          PolicyKind::kRwlRo}) {
    for (int trial = 0; trial < 20; ++trial) {
      const std::int64_t w = 3 + static_cast<std::int64_t>(rng.next_below(14));
      const std::int64_t h = 3 + static_cast<std::int64_t>(rng.next_below(14));
      arch::AcceleratorConfig cfg = arch::rota_like();
      cfg.array_width = w;
      cfg.array_height = h;

      sched::NetworkSchedule ns;
      ns.network_name = "rand";
      ns.network_abbr = "rand";
      ns.config = cfg;
      const int layer_count = 1 + static_cast<int>(rng.next_below(5));
      for (int l = 0; l < layer_count; ++l) {
        const std::int64_t x =
            1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(w)));
        const std::int64_t y =
            1 + static_cast<std::int64_t>(rng.next_below(static_cast<std::uint64_t>(h)));
        const std::int64_t z =
            1 + static_cast<std::int64_t>(rng.next_below(900));
        std::string lname = "l";
        lname += std::to_string(l);
        ns.layers.push_back(layer_of(x, y, z, lname.c_str()));
      }

      WearSimulator fast(cfg, SimulatorOptions{true});
      WearSimulator naive(cfg, SimulatorOptions{false});
      auto pf = make_policy(kind, w, h);
      auto pn = make_policy(kind, w, h);
      fast.run_iterations(ns, *pf, 3);
      naive.run_iterations(ns, *pn, 3);
      EXPECT_TRUE(fast.tracker().usage() == naive.tracker().usage())
          << to_string(kind) << " trial " << trial;
    }
  }
}

TEST(Simulator, FastForwardMatchesNaiveInFrozenBandState) {
  // RWL+RO can enter a state whose horizontal coordinate is off the
  // column-0 stride lattice of the next layer (gcd(w, x) does not divide
  // u): v freezes and the fast path levels a horizontal band instead of
  // the whole array. Construct that state deliberately: layer A (x = 5,
  // one tile) leaves u = 5; layer B has x = 8 on w = 14 (gcd 2, 5 is odd).
  sched::NetworkSchedule ns;
  ns.config = arch::rota_like();
  ns.layers.push_back(layer_of(5, 4, 1, "odd_shift"));
  ns.layers.push_back(layer_of(8, 7, 300, "frozen_band"));

  WearSimulator fast(arch::rota_like(), SimulatorOptions{true});
  WearSimulator naive(arch::rota_like(), SimulatorOptions{false});
  auto pf = make_policy(PolicyKind::kRwlRo, 14, 12);
  auto pn = make_policy(PolicyKind::kRwlRo, 14, 12);
  fast.run_iterations(ns, *pf, 3);
  naive.run_iterations(ns, *pn, 3);
  EXPECT_TRUE(fast.tracker().usage() == naive.tracker().usage());

  // Sanity: the frozen layer really could not advance v — rows outside
  // its band plus the first layer's rows stay at low usage.
  const auto st = naive.tracker().stats();
  EXPECT_GT(st.max_diff, 0);
}

TEST(Simulator, FastForwardMatchesNaiveAcrossOddEvenLayerMixes) {
  // Random walks through layers with mixed gcd structure, so both bulk
  // branches (full-lattice and frozen-band) interleave.
  util::SplitMix64 rng(777);
  for (int trial = 0; trial < 10; ++trial) {
    sched::NetworkSchedule ns;
    ns.config = arch::rota_like();
    const int layers = 4 + static_cast<int>(rng.next_below(5));
    for (int l = 0; l < layers; ++l) {
      const std::int64_t x =
          1 + static_cast<std::int64_t>(rng.next_below(14));
      const std::int64_t y =
          1 + static_cast<std::int64_t>(rng.next_below(12));
      const std::int64_t z =
          1 + static_cast<std::int64_t>(rng.next_below(600));
      std::string lname = "l";
      lname += std::to_string(l);
      ns.layers.push_back(layer_of(x, y, z, lname.c_str()));
    }
    WearSimulator fast(arch::rota_like(), SimulatorOptions{true});
    WearSimulator naive(arch::rota_like(), SimulatorOptions{false});
    auto pf = make_policy(PolicyKind::kRwlRo, 14, 12);
    auto pn = make_policy(PolicyKind::kRwlRo, 14, 12);
    fast.run_iterations(ns, *pf, 5);
    naive.run_iterations(ns, *pn, 5);
    EXPECT_TRUE(fast.tracker().usage() == naive.tracker().usage())
        << "trial " << trial;
  }
}

TEST(Simulator, AllocationConservation) {
  // Every policy records exactly Σ Z·x·y PE-allocations per iteration.
  const auto ns = tiny_schedule(arch::rota_like());
  std::int64_t expected = 0;
  for (const auto& l : ns.layers) expected += l.tiles * l.space.x * l.space.y;
  for (PolicyKind kind : {PolicyKind::kBaseline, PolicyKind::kRwl,
                          PolicyKind::kRwlRo, PolicyKind::kRandomStart,
                          PolicyKind::kDiagonalStride}) {
    WearSimulator sim(arch::rota_like());
    auto policy = make_policy(kind, 14, 12);
    sim.run_iterations(ns, *policy, 4);
    EXPECT_EQ(sim.tracker().total_pe_allocations(), 4 * expected)
        << to_string(kind);
    std::int64_t grid_sum = 0;
    for (std::int64_t v : sim.tracker().usage().cells()) grid_sum += v;
    EXPECT_EQ(grid_sum, 4 * expected) << to_string(kind);
  }
}

TEST(Simulator, RwlRoBoundsUsageDifferenceOverIterations) {
  // Fig. 6b: with RWL+RO the max usage difference stays bounded while the
  // baseline's grows linearly in the iteration count.
  const auto ns = tiny_schedule(arch::rota_like());
  WearSimulator ro_sim(arch::rota_like());
  auto ro = make_policy(PolicyKind::kRwlRo, 14, 12);
  std::int64_t ro_worst = 0;
  ro_sim.run_iterations(ns, *ro, 200,
                        [&](std::int64_t, const UsageTracker& t) {
                          ro_worst = std::max(ro_worst, t.stats().max_diff);
                        });

  WearSimulator base_sim(arch::rota_like());
  auto base = make_policy(PolicyKind::kBaseline, 14, 12);
  base_sim.run_iterations(ns, *base, 200);
  const std::int64_t base_final = base_sim.tracker().stats().max_diff;

  EXPECT_LT(ro_worst * 20, base_final);
}

TEST(Simulator, ActiveCycleMetricScalesCountersUniformly) {
  // For a schedule whose layers share one weight, cycle-weighted usage is
  // exactly the allocation-counted usage times that weight.
  sched::NetworkSchedule ns;
  ns.config = arch::rota_like();
  auto layer = layer_of(8, 8, 40, "a");
  layer.compute_macs_per_pe = 6;
  layer.reduction_steps = 2;
  layer.allocations_per_tile = 3;
  ns.layers.push_back(layer);

  wear::WearSimulator alloc_sim(
      arch::rota_like(), SimulatorOptions{true, WearMetric::kAllocations});
  wear::WearSimulator cyc_sim(
      arch::rota_like(), SimulatorOptions{true, WearMetric::kActiveCycles});
  auto p1 = make_policy(PolicyKind::kRwlRo, 14, 12);
  auto p2 = make_policy(PolicyKind::kRwlRo, 14, 12);
  alloc_sim.run_iterations(ns, *p1, 3);
  cyc_sim.run_iterations(ns, *p2, 3);

  const std::int64_t weight = 6 * 2 * 3;
  const auto& a = alloc_sim.tracker().usage();
  const auto& c = cyc_sim.tracker().usage();
  for (std::size_t i = 0; i < a.cells().size(); ++i) {
    EXPECT_EQ(c.cells()[i], a.cells()[i] * weight);
  }
}

TEST(Simulator, ActiveCycleFastForwardMatchesNaive) {
  sched::NetworkSchedule ns;
  ns.config = arch::rota_like();
  for (int l = 0; l < 3; ++l) {
    auto layer = layer_of(3 + 2 * l, 5 + l, 57 + 13 * l,
                          ("l" + std::to_string(l)).c_str());
    layer.layer_name = "l" + std::to_string(l);
    layer.compute_macs_per_pe = 2 + l;
    layer.reduction_steps = 1 + l;
    layer.allocations_per_tile = 1 + 2 * l;
    ns.layers.push_back(layer);
  }
  for (PolicyKind kind : {PolicyKind::kBaseline, PolicyKind::kRwl,
                          PolicyKind::kRwlRo}) {
    wear::WearSimulator fast(
        arch::rota_like(), SimulatorOptions{true, WearMetric::kActiveCycles});
    wear::WearSimulator naive(
        arch::rota_like(), SimulatorOptions{false, WearMetric::kActiveCycles});
    auto pf = make_policy(kind, 14, 12);
    auto pn = make_policy(kind, 14, 12);
    fast.run_iterations(ns, *pf, 4);
    naive.run_iterations(ns, *pn, 4);
    EXPECT_TRUE(fast.tracker().usage() == naive.tracker().usage())
        << to_string(kind);
  }
}

TEST(Simulator, OversizedSpaceRejected) {
  WearSimulator sim(arch::rota_like());
  auto policy = make_policy(PolicyKind::kRwlRo, 14, 12);
  sched::NetworkSchedule ns;
  ns.config = arch::rota_like();
  ns.layers.push_back(layer_of(15, 3, 4));
  EXPECT_THROW(sim.run_layer(ns.layers[0], *policy), precondition_error);
}

}  // namespace
}  // namespace rota::wear
