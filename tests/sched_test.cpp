#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <utility>
#include <vector>

#include "arch/config.hpp"
#include "nn/workloads.hpp"
#include "reliability/array_reliability.hpp"
#include "reliability/spares.hpp"
#include "sched/cost.hpp"
#include "sched/mapper.hpp"
#include "sched/rs_mapper.hpp"
#include "sched/serialize.hpp"
#include "wear/policy.hpp"
#include "wear/simulator.hpp"
#include "util/check.hpp"

namespace rota::sched {
namespace {

using util::precondition_error;

nn::LayerSpec resnet_c5_like() {
  // A conv5-stage ResNet layer: 3×3, 512→512 on 7×7 maps.
  return nn::conv("c5", 512, 512, 7, 3, 1);
}

Mapping simple_mapping() {
  Mapping m;
  m.dim_x = SpatialX::kOutChannels;
  m.dim_y = SpatialY::kOutHeight;
  m.sx = 8;
  m.sy = 7;
  m.lb_c = 4;
  m.lb_q = 7;
  m.lb_s = 3;
  return m;
}

// ----------------------------------------------------------- cost model ----

TEST(CostModel, ValidMappingProducesConsistentTiles) {
  const CostModel cm(arch::eyeriss_like());
  const nn::LayerSpec layer = resnet_c5_like();
  const CostResult res = cm.evaluate(layer, simple_mapping());
  ASSERT_TRUE(res.valid);
  // Output tiles = N·Tk·Tp·Tq = 1·64·1·1 for sx=8, sy=7, lb_q=7; each
  // spans Tc·Ts = 128·1 local-buffer refills. One output tile's working
  // set (~79k words) exceeds the GLB, so each is its own data tile.
  EXPECT_EQ(res.output_tiles, 64);
  EXPECT_EQ(res.allocations_per_tile, 1);
  EXPECT_EQ(res.tiles, 64);
  EXPECT_EQ(res.reduction_steps, 128);
  EXPECT_EQ(res.accesses.macs, layer.macs());
  EXPECT_EQ(res.accesses.lb_accesses, 3 * layer.macs());
  EXPECT_EQ(res.accesses.inter_pe_hops, 0);  // no spatial reduction
  EXPECT_GT(res.accesses.glb_accesses, 0);
  EXPECT_GT(res.accesses.dram_accesses, 0);
  EXPECT_GT(res.energy, 0.0);
  EXPECT_GT(res.cycles, 0.0);
}

TEST(CostModel, RejectsOversizedSpatialFactors) {
  const CostModel cm(arch::eyeriss_like());
  Mapping m = simple_mapping();
  m.sx = 15;  // > array width 14
  EXPECT_FALSE(cm.evaluate(resnet_c5_like(), m).valid);
  m = simple_mapping();
  m.sy = 13;  // > array height 12
  EXPECT_FALSE(cm.evaluate(resnet_c5_like(), m).valid);
}

TEST(CostModel, RejectsSpatialFactorBeyondLoopBound) {
  const CostModel cm(arch::eyeriss_like());
  Mapping m = simple_mapping();
  m.dim_y = SpatialY::kOutHeight;
  m.sy = 8;  // P = 7
  EXPECT_FALSE(cm.evaluate(resnet_c5_like(), m).valid);
}

TEST(CostModel, RejectsLocalBufferOverflow) {
  const CostModel cm(arch::eyeriss_like());
  Mapping m = simple_mapping();
  m.lb_c = 200;  // 200·3·3 = 1800 words > 224-word weight LB
  EXPECT_FALSE(cm.evaluate(resnet_c5_like(), m).valid);
  m = simple_mapping();
  m.lb_q = 25;  // > 24-word output LB
  EXPECT_FALSE(cm.evaluate(resnet_c5_like(), m).valid);
  m = simple_mapping();
  m.lb_c = 5;
  m.lb_s = 3;  // 5·3 = 15 input words > 12-word input LB
  EXPECT_FALSE(cm.evaluate(resnet_c5_like(), m).valid);
}

TEST(CostModel, SpatialReductionChargesInterPeHops) {
  const CostModel cm(arch::eyeriss_like());
  Mapping m;
  m.dim_x = SpatialX::kOutChannels;
  m.dim_y = SpatialY::kInChannels;
  m.sx = 8;
  m.sy = 4;
  m.lb_c = 4;
  m.lb_q = 7;
  m.lb_s = 3;
  const CostResult res = cm.evaluate(resnet_c5_like(), m);
  ASSERT_TRUE(res.valid);
  // Hops accrue per local-buffer refill, not per allocation.
  EXPECT_EQ(res.accesses.inter_pe_hops,
            res.tiles * res.reduction_steps * 8 * (4 - 1) * 7);
}

TEST(CostModel, PaddingIsChargedInTraffic) {
  // Mapping K=512 with sx=14 pads to 518; with sx=8 there is no padding.
  // The padded mapping must never be cheaper on weight traffic.
  const CostModel cm(arch::eyeriss_like());
  Mapping exact = simple_mapping();   // sx = 8 divides 512
  Mapping padded = simple_mapping();
  padded.sx = 14;
  const CostResult re = cm.evaluate(resnet_c5_like(), exact);
  const CostResult rp = cm.evaluate(resnet_c5_like(), padded);
  ASSERT_TRUE(re.valid);
  ASSERT_TRUE(rp.valid);
  EXPECT_GE(rp.accesses.dram_accesses, re.accesses.dram_accesses);
}

TEST(CostModel, PerDispatchQuantitiesPopulated) {
  const CostModel cm(arch::eyeriss_like());
  const CostResult res = cm.evaluate(resnet_c5_like(), simple_mapping());
  ASSERT_TRUE(res.valid);
  EXPECT_GT(res.scatter_words, 0);
  EXPECT_EQ(res.compute_macs_per_pe, 7 * 4 * 3 * 3);
  EXPECT_EQ(res.gather_words, 8 * 7 * 7);
  EXPECT_EQ(res.reduction_steps, 128);
}

// --------------------------------------------------------------- mapper ----

class MapperOnZoo : public ::testing::TestWithParam<const char*> {};

TEST_P(MapperOnZoo, EveryLayerGetsAFeasibleEnergyOptimalSchedule) {
  Mapper mapper(arch::eyeriss_like(), ObjectiveSpec{});
  const nn::Network net = nn::workload_by_abbr(GetParam());
  const NetworkSchedule ns = mapper.schedule_network(net);
  ASSERT_EQ(ns.layers.size(), net.layer_count());
  const auto& cfg = mapper.config();
  for (const auto& l : ns.layers) {
    EXPECT_GE(l.space.x, 1);
    EXPECT_LE(l.space.x, cfg.array_width);
    EXPECT_GE(l.space.y, 1);
    EXPECT_LE(l.space.y, cfg.array_height);
    EXPECT_GE(l.tiles, 1);
    EXPECT_GT(l.energy, 0.0);
    EXPECT_GT(l.cycles, 0.0);
    EXPECT_GT(l.utilization(cfg), 0.0);
    EXPECT_LE(l.utilization(cfg), 1.0);
    // Work conservation: the dispatched lanes must cover all MACs.
    EXPECT_GE(l.output_tiles * l.reduction_steps * l.space.x * l.space.y *
                  l.compute_macs_per_pe,
              l.macs);
    // Tiling hierarchy consistency.
    EXPECT_GE(l.allocations_per_tile, 1);
    EXPECT_EQ(l.tiles, (l.output_tiles + l.allocations_per_tile - 1) /
                           l.allocations_per_tile);
  }
}

INSTANTIATE_TEST_SUITE_P(TableII, MapperOnZoo,
                         ::testing::Values("Res", "Inc", "YL", "Sqz", "Mb",
                                           "Eff", "VT", "MVT", "LM"));

TEST(Mapper, MemoizesRepeatedShapes) {
  Mapper mapper(arch::eyeriss_like(), ObjectiveSpec{});
  const nn::Network lm = nn::make_llama2_7b();
  mapper.schedule_network(lm);
  EXPECT_EQ(mapper.cache_size(), lm.unique_shape_count());
}

TEST(Mapper, DeterministicAcrossInstances) {
  Mapper a(arch::eyeriss_like(), ObjectiveSpec{});
  Mapper b(arch::eyeriss_like(), ObjectiveSpec{});
  const nn::Network net = nn::make_squeezenet();
  const NetworkSchedule sa = a.schedule_network(net);
  const NetworkSchedule sb = b.schedule_network(net);
  ASSERT_EQ(sa.layers.size(), sb.layers.size());
  for (std::size_t i = 0; i < sa.layers.size(); ++i) {
    EXPECT_EQ(sa.layers[i].space.x, sb.layers[i].space.x);
    EXPECT_EQ(sa.layers[i].space.y, sb.layers[i].space.y);
    EXPECT_EQ(sa.layers[i].tiles, sb.layers[i].tiles);
    EXPECT_DOUBLE_EQ(sa.layers[i].energy, sb.layers[i].energy);
  }
}

TEST(Mapper, PrefersLowWasteSpatialFactors) {
  // SqueezeNet squeeze layers have K = 16 on a 14-wide array: an exact
  // 8-wide space (2 tiles, no padding) must beat a 14-wide space that pads
  // K to 28.
  Mapper mapper(arch::eyeriss_like(), ObjectiveSpec{});
  const LayerSchedule ls =
      mapper.schedule_layer(nn::conv("sq", 128, 16, 55, 1, 1));
  EXPECT_EQ(ls.space.x % 2, 0);
  EXPECT_LE(ls.space.x, 8);
}

TEST(Mapper, UtilizationVariesAcrossSqueezeNetLayers) {
  // Fig. 2b: per-layer utilization must span a wide range.
  Mapper mapper(arch::eyeriss_like(), ObjectiveSpec{});
  const NetworkSchedule ns = mapper.schedule_network(nn::make_squeezenet());
  double lo = 1.0;
  double hi = 0.0;
  for (const auto& l : ns.layers) {
    lo = std::min(lo, l.utilization(mapper.config()));
    hi = std::max(hi, l.utilization(mapper.config()));
  }
  EXPECT_LT(lo, 0.5);
  EXPECT_GT(hi, 0.5);
}

TEST(Mapper, MeanZooUtilizationNearPaperFig2a) {
  // Paper: Eyeriss energy-optimal execution utilizes 55.8% of PEs on
  // average. Our exact-factorization mapper is a reimplementation and runs
  // a little conservative (≈40%); accept 30–75% and require substantial
  // under-utilization (the paper's whole premise).
  Mapper mapper(arch::eyeriss_like(), ObjectiveSpec{});
  double sum = 0.0;
  int count = 0;
  for (const auto& net : nn::all_workloads()) {
    sum += mapper.schedule_network(net).mean_utilization();
    ++count;
  }
  const double mean = sum / count;
  EXPECT_GT(mean, 0.30);
  EXPECT_LT(mean, 0.75);
}

TEST(Mapper, YoloHasLowestUtilizationOfTheZoo) {
  // §V-B: "YOLO v3 layers have the lowest PE utilization ratios among the
  // tested DNN workloads".
  Mapper mapper(arch::eyeriss_like(), ObjectiveSpec{});
  double yolo = 1.0;
  double others_min = 1.0;
  for (const auto& net : nn::all_workloads()) {
    const double u = mapper.schedule_network(net).mean_utilization();
    if (net.abbr() == "YL") {
      yolo = u;
    } else {
      others_min = std::min(others_min, u);
    }
  }
  EXPECT_LT(yolo, others_min);
}

TEST(Mapper, ImperfectFactorizationFillsArrayBetter) {
  // The generalized (padding-capable) mapper must achieve at least the
  // exact-factorization utilization — it searches a superset.
  Mapper exact(arch::eyeriss_like(), ObjectiveSpec{});
  Mapper padded(arch::eyeriss_like(), ObjectiveSpec{}, {},
                MapperOptions{false});
  const nn::Network net = nn::make_llama2_7b();
  const double u_exact = exact.schedule_network(net).mean_utilization();
  const double u_padded = padded.schedule_network(net).mean_utilization();
  EXPECT_GE(u_padded, u_exact);
  EXPECT_GT(u_padded, 0.9);  // big GEMMs fill the array when padding is free
}

TEST(Mapper, CachedScheduleKeepsLayerNames) {
  Mapper mapper(arch::eyeriss_like(), ObjectiveSpec{});
  const nn::LayerSpec a = nn::conv("alpha", 64, 64, 28, 3, 1);
  const nn::LayerSpec b = nn::conv("beta", 64, 64, 28, 3, 1);
  EXPECT_EQ(mapper.schedule_layer(a).layer_name, "alpha");
  EXPECT_EQ(mapper.schedule_layer(b).layer_name, "beta");
  EXPECT_EQ(mapper.cache_size(), 1u);
}

TEST(Mapper, UtilizationTrendsDownOnMuchLargerArrays) {
  // Fig. 10 premise: growing the array tends to reduce the utilization
  // ratio. The trend is not strictly monotone (power-of-two channel counts
  // fill a 32×32 array unusually well), so compare the endpoints of the
  // sweep: an 8×8 array vs a 64×64 one.
  Mapper small(arch::scaled_array(8, arch::TopologyKind::kMesh2D),
               ObjectiveSpec{});
  Mapper large(arch::scaled_array(64, arch::TopologyKind::kMesh2D),
               ObjectiveSpec{});
  const nn::Network net = nn::make_squeezenet();
  const double u_small = small.schedule_network(net).mean_utilization();
  const double u_large = large.schedule_network(net).mean_utilization();
  EXPECT_LT(u_large, u_small);
}

TEST(Mapper, GoldenSpacesForAnchorLayers) {
  // Regression pins for the utilization spaces of layers the benches and
  // EXPERIMENTS.md reference. If an intentional cost-model change moves
  // these, update the pins AND the affected documentation.
  Mapper mapper(arch::eyeriss_like(), ObjectiveSpec{});
  struct Pin {
    nn::LayerSpec layer;
    std::int64_t x;
    std::int64_t y;
  };
  const Pin pins[] = {
      // ResNet conv5 bottleneck 1×1 (2048→512 on 7×7): the paper's Fig. 5
      // worked example uses an 8×8 space for a C5 layer; our mapper lands
      // on exactly that shape for these layers.
      {nn::conv("c5a", 2048, 512, 7, 1, 1), 8, 8},
      // ResNet conv5 3×3 (512→512 on 7×7): 8 wide × all 7 output rows.
      {nn::conv("c5b", 512, 512, 7, 3, 1), 8, 7},
      // SqueezeNet fire2 squeeze: K = 16 picks the exact 8-wide space.
      {nn::conv("sq", 96, 16, 55, 1, 1), 8, 8},
      // SqueezeNet conv1 (no padding): 12 × 3.
      {nn::conv("c1", 3, 96, 224, 7, 2, 0), 12, 3},
  };
  for (const Pin& pin : pins) {
    const LayerSchedule ls = mapper.schedule_layer(pin.layer);
    EXPECT_EQ(ls.space.x, pin.x) << pin.layer.name;
    EXPECT_EQ(ls.space.y, pin.y) << pin.layer.name;
  }
}

TEST(Mapper, GoldenZooUtilizations) {
  // Coarse regression net over the per-workload means quoted in
  // EXPERIMENTS.md (±3 percentage points of slack).
  Mapper mapper(arch::eyeriss_like(), ObjectiveSpec{});
  const std::pair<const char*, double> pins[] = {
      {"Res", 0.369}, {"Inc", 0.515}, {"YL", 0.227},  {"Sqz", 0.386},
      {"Mb", 0.422},  {"Eff", 0.401}, {"VT", 0.394},  {"MVT", 0.480},
      {"LM", 0.381},
  };
  for (const auto& [abbr, util] : pins) {
    const auto ns = mapper.schedule_network(nn::workload_by_abbr(abbr));
    EXPECT_NEAR(ns.mean_utilization(), util, 0.03) << abbr;
  }
}

// ---------------------------------------------------- row-stationary ----

TEST(RsMapper, GeometryOfSmallMapConv) {
  // 3×3 conv on 7×7 maps (ResNet conv5-like): one 3-tall × 7-wide strip,
  // replicated 4× across filters -> 7×12 utilization space.
  const auto layer = nn::conv("c", 512, 512, 7, 3, 1);
  const RsGeometry g = rs_geometry(layer, 14, 12);
  EXPECT_EQ(g.set_width, 7);
  EXPECT_EQ(g.passes_e, 1);
  EXPECT_EQ(g.strips, 1);
  EXPECT_EQ(g.replication, 4);
  EXPECT_EQ(g.space_x, 7);
  EXPECT_EQ(g.space_y, 12);
}

TEST(RsMapper, GeometryFoldsWideMaps) {
  // 3×3 conv on 56×56 maps: E = 56 folds into 14-wide strips; four strips
  // of height 3 stack (12 rows), no replication head-room.
  const auto layer = nn::conv("c", 64, 64, 56, 3, 1);
  const RsGeometry g = rs_geometry(layer, 14, 12);
  EXPECT_EQ(g.set_width, 14);
  EXPECT_EQ(g.passes_e, 4);
  EXPECT_EQ(g.strips, 4);
  EXPECT_EQ(g.replication, 1);
  EXPECT_EQ(g.space_y, 12);
}

TEST(RsMapper, GeometryCapsReplicationAtFilterCount) {
  // A single-filter layer cannot replicate across K.
  const auto layer = nn::conv("c", 8, 1, 7, 3, 1);
  const RsGeometry g = rs_geometry(layer, 14, 12);
  EXPECT_EQ(g.replication, 1);
  EXPECT_EQ(g.space_y, 3);
}

TEST(RsMapper, TallFiltersFoldOverRows) {
  // R = 16 > h = 12: folded to R = 12 with an extra reduction fold.
  const auto layer = nn::conv("patch", 3, 768, 224, 16, 16, 0);
  const RsGeometry g = rs_geometry(layer, 14, 12);
  EXPECT_LE(g.space_y, 12);
  RsMapper mapper(arch::eyeriss_like());
  const auto ls = mapper.schedule_layer(layer);
  EXPECT_GE(ls.reduction_steps, 2 * 3);  // r folds × channels
}

class RsMapperOnZoo : public ::testing::TestWithParam<const char*> {};

TEST_P(RsMapperOnZoo, SchedulesEveryLayerWithinBounds) {
  RsMapper mapper(arch::eyeriss_like());
  const nn::Network net = nn::workload_by_abbr(GetParam());
  const NetworkSchedule ns = mapper.schedule_network(net);
  ASSERT_EQ(ns.layers.size(), net.layer_count());
  for (const auto& l : ns.layers) {
    EXPECT_GE(l.space.x, 1);
    EXPECT_LE(l.space.x, 14);
    EXPECT_GE(l.space.y, 1);
    EXPECT_LE(l.space.y, 12);
    EXPECT_GE(l.tiles, 1);
    EXPECT_GT(l.energy, 0.0);
    EXPECT_GE(l.output_tiles * l.reduction_steps * l.space.x * l.space.y *
                  l.compute_macs_per_pe,
              l.macs);
  }
}

INSTANTIATE_TEST_SUITE_P(TableII, RsMapperOnZoo,
                         ::testing::Values("Res", "Sqz", "Mb", "VT", "LM"));

TEST(RsMapper, WearSimulationRunsOnRsSchedules) {
  RsMapper mapper(arch::rota_like());
  const auto ns = mapper.schedule_network(nn::make_squeezenet());
  wear::WearSimulator sim(arch::rota_like());
  auto policy = wear::make_policy(wear::PolicyKind::kRwlRo, 14, 12);
  sim.run_iterations(ns, *policy, 5);
  EXPECT_GT(sim.tracker().stats().min, 0);
}

// ----------------------------------------------------------- serialize ----

TEST(Serialize, RoundTripPreservesEveryField) {
  Mapper mapper(arch::eyeriss_like(), ObjectiveSpec{});
  const NetworkSchedule ns = mapper.schedule_network(nn::make_squeezenet());
  std::stringstream buf;
  write_schedule_csv(ns, buf);
  const NetworkSchedule back =
      read_schedule_csv(buf, arch::eyeriss_like(), ns.network_name,
                        ns.network_abbr);
  ASSERT_EQ(back.layers.size(), ns.layers.size());
  for (std::size_t i = 0; i < ns.layers.size(); ++i) {
    const auto& a = ns.layers[i];
    const auto& b = back.layers[i];
    EXPECT_EQ(a.layer_name, b.layer_name);
    EXPECT_EQ(a.space.x, b.space.x);
    EXPECT_EQ(a.space.y, b.space.y);
    EXPECT_EQ(a.tiles, b.tiles);
    EXPECT_EQ(a.output_tiles, b.output_tiles);
    EXPECT_EQ(a.allocations_per_tile, b.allocations_per_tile);
    EXPECT_EQ(a.reduction_steps, b.reduction_steps);
    EXPECT_EQ(a.scatter_words, b.scatter_words);
    EXPECT_EQ(a.compute_macs_per_pe, b.compute_macs_per_pe);
    EXPECT_EQ(a.gather_words, b.gather_words);
    EXPECT_EQ(a.macs, b.macs);
  }
}

TEST(Serialize, MinimalColumnsSuffice) {
  // An external scheduler (e.g. NeuroSpector output) only needs the core
  // four columns, in any order.
  std::stringstream buf("x,tiles,layer,y\n8,32,c5,8\n5,100,det,12\n");
  const NetworkSchedule ns =
      read_schedule_csv(buf, arch::rota_like(), "ext", "ext");
  ASSERT_EQ(ns.layers.size(), 2u);
  EXPECT_EQ(ns.layers[0].layer_name, "c5");
  EXPECT_EQ(ns.layers[0].space.x, 8);
  EXPECT_EQ(ns.layers[0].space.y, 8);
  EXPECT_EQ(ns.layers[0].tiles, 32);
  EXPECT_EQ(ns.layers[1].space.y, 12);
  // Defaults applied.
  EXPECT_EQ(ns.layers[0].reduction_steps, 1);
  EXPECT_EQ(ns.layers[0].output_tiles, 32);
}

TEST(Serialize, ImportedScheduleDrivesTheWearSimulator) {
  // The paper's worked example, fed through the CSV interface end to end.
  std::stringstream buf("layer,x,y,tiles\nc5,8,8,32\n");
  const NetworkSchedule ns =
      read_schedule_csv(buf, arch::rota_like(), "paper", "pp");
  wear::WearSimulator sim(arch::rota_like());
  auto policy = wear::make_policy(wear::PolicyKind::kRwl, 14, 12);
  sim.run_iteration(ns, *policy);
  const auto st = sim.tracker().stats();
  EXPECT_LE(st.max_diff, 5);  // Eq. 9: W + 1
  EXPECT_EQ(st.min, 10);      // Eq. 10
}

TEST(Serialize, RejectsMalformedInput) {
  const arch::AcceleratorConfig cfg = arch::rota_like();
  {
    std::stringstream buf;
    EXPECT_THROW(read_schedule_csv(buf, cfg), precondition_error);
  }
  {
    std::stringstream buf("layer,x,y\nc,1,1\n");  // missing tiles
    EXPECT_THROW(read_schedule_csv(buf, cfg), precondition_error);
  }
  {
    std::stringstream buf("layer,x,y,tiles\nc,15,1,4\n");  // x > w
    EXPECT_THROW(read_schedule_csv(buf, cfg), precondition_error);
  }
  {
    std::stringstream buf("layer,x,y,tiles\nc,8,8,abc\n");
    EXPECT_THROW(read_schedule_csv(buf, cfg), precondition_error);
  }
  {
    std::stringstream buf("layer,x,y,tiles\n");  // no rows
    EXPECT_THROW(read_schedule_csv(buf, cfg), precondition_error);
  }
}

TEST(NetworkSchedule, AggregatesAreConsistent) {
  Mapper mapper(arch::eyeriss_like(), ObjectiveSpec{});
  const NetworkSchedule ns = mapper.schedule_network(nn::make_squeezenet());
  std::int64_t tiles = 0;
  double energy = 0.0;
  for (const auto& l : ns.layers) {
    tiles += l.tiles;
    energy += l.energy;
  }
  EXPECT_EQ(ns.total_tiles(), tiles);
  EXPECT_DOUBLE_EQ(ns.total_energy(), energy);
  EXPECT_GT(ns.mean_utilization(), 0.0);
  EXPECT_GT(ns.tile_weighted_utilization(), 0.0);
}

// ----------------------------------------------------------- objectives ----

TEST(Objective, ParseAndIdRoundTrip) {
  for (const char* id : {"energy", "lifetime", "throughput",
                         "weighted:0.25,0.5,0.25"}) {
    const auto spec = parse_objective(id);
    ASSERT_TRUE(spec.ok()) << id;
    EXPECT_EQ(spec.value().id(), id);
    const auto again = parse_objective(spec.value().id());
    ASSERT_TRUE(again.ok()) << id;
    EXPECT_EQ(again.value(), spec.value());
  }
  EXPECT_EQ(ObjectiveSpec{}.id(), "energy");
  EXPECT_EQ(ObjectiveSpec::weighted(0.2, 0.7, 0.1).weights_csv(),
            "0.2,0.7,0.1");
  for (const char* bad : {"", "speed", "weighted:", "weighted:1,2",
                          "weighted:-1,0,1", "weighted:0,0,0",
                          "weighted:1,nan,0"}) {
    EXPECT_FALSE(parse_objective(bad).ok()) << bad;
  }
}

// Satellite of DESIGN.md §15: the energy comparator implements exactly the
// documented chain — energy ascending, cycles ascending, utilization space
// sx·sy DESCENDING, then lexicographic mapping order — and the alternative
// objectives swap only the leading axis.
TEST(Objective, ComparatorImplementsDocumentedTieBreak) {
  const ObjectiveSpec spec;  // energy
  Mapping ma = simple_mapping();
  Mapping mb = simple_mapping();
  CostResult ca;
  CostResult cb;
  ca.energy = 1.0;
  cb.energy = 2.0;
  ca.cycles = cb.cycles = 10.0;
  EXPECT_TRUE(objective_better(spec, ca, ma, cb, mb));
  EXPECT_FALSE(objective_better(spec, cb, mb, ca, ma));

  cb.energy = 1.0;  // energy tie: cycles ascending decides
  cb.cycles = 20.0;
  EXPECT_TRUE(objective_better(spec, ca, ma, cb, mb));
  EXPECT_FALSE(objective_better(spec, cb, mb, ca, ma));

  cb.cycles = 10.0;  // energy+cycles tie: LARGER sx·sy wins
  mb.sx = ma.sx / 2;
  EXPECT_TRUE(objective_better(spec, ca, ma, cb, mb));
  EXPECT_FALSE(objective_better(spec, cb, mb, ca, ma));

  mb = ma;  // full numeric tie: lexicographic mapping order
  mb.lb_s = ma.lb_s + 1;
  EXPECT_TRUE(mapping_lex_less(ma, mb));
  EXPECT_TRUE(objective_better(spec, ca, ma, cb, mb));
  EXPECT_FALSE(objective_better(spec, cb, mb, ca, ma));

  mb = ma;  // identical candidates: a strict order calls neither better
  EXPECT_FALSE(objective_better(spec, ca, ma, cb, mb));
  EXPECT_FALSE(objective_better(spec, cb, mb, ca, ma));

  // Throughput leads with cycles even against much cheaper energy.
  ca.cycles = 5.0;
  ca.energy = 9.0;
  cb.cycles = 6.0;
  cb.energy = 1.0;
  EXPECT_TRUE(objective_better(ObjectiveSpec::throughput(), ca, ma, cb, mb));
  // Lifetime leads with PE-allocations (tiles·sx·sy) ascending.
  ca.tiles = 1;
  cb.tiles = 2;
  EXPECT_TRUE(objective_better(ObjectiveSpec::lifetime(), ca, ma, cb, mb));
  EXPECT_FALSE(objective_better(ObjectiveSpec::lifetime(), cb, mb, ca, ma));
}

TEST(Objective, ProjectedMttfMatchesArrayMttfAtUniformWear) {
  // A allocations leveled over n live PEs is α_i = A/n for every i; Eq. 3
  // must then agree with the closed form projected_mttf implements.
  const std::int64_t allocations = 4032;
  const std::int64_t live = 168;
  const std::vector<double> alphas(
      static_cast<std::size_t>(live),
      static_cast<double>(allocations) / static_cast<double>(live));
  const double reference = rel::array_mttf(alphas);
  EXPECT_NEAR(projected_mttf(allocations, live), reference, 1e-9 * reference);
  // Fewer allocations on the same array always projects a longer life.
  EXPECT_GT(projected_mttf(allocations / 2, live),
            projected_mttf(allocations, live));
}

// ---------------------------------------------------------- array state ----

TEST(ArrayState, DefaultIsUniversalAllLive) {
  const ArrayState state;
  EXPECT_FALSE(state.concrete());
  EXPECT_EQ(state.digest(), "live");
  EXPECT_TRUE(state.fits(14, 12));
  EXPECT_EQ(state.anchor(14, 12),
            (std::pair<std::int64_t, std::int64_t>{0, 0}));
  EXPECT_EQ(state.live_count(14, 12), 168);
  EXPECT_EQ(state.live_count(3, 3), 9);
}

TEST(ArrayState, TorusWrappedAnchorRoutesAroundDeadPes) {
  // 4×4 with (1, 1) dead: a 3×3 window is feasible only when its column
  // or row span skips index 1, which forces a wrap-around anchor — the
  // first in (v, then u) scan order is (2, 0), covering columns {2, 3, 0}.
  const ArrayState state(4, 4, {{1, 1}});
  EXPECT_TRUE(state.concrete());
  EXPECT_EQ(state.dead_count(), 1);
  EXPECT_EQ(state.live_count(4, 4), 15);
  EXPECT_TRUE(state.dead(1, 1));
  EXPECT_FALSE(state.dead(2, 2));
  EXPECT_FALSE(state.fits(4, 4));
  ASSERT_TRUE(state.fits(3, 3));
  EXPECT_EQ(state.anchor(3, 3),
            (std::pair<std::int64_t, std::int64_t>{2, 0}));
  ASSERT_TRUE(state.fits(1, 1));
  EXPECT_EQ(state.anchor(1, 1),
            (std::pair<std::int64_t, std::int64_t>{0, 0}));
}

TEST(ArrayState, DigestIsContentStable) {
  const ArrayState a(14, 12, {{3, 3}, {10, 2}});
  // Duplicates collapse and listing order is irrelevant.
  const ArrayState b(14, 12, {{10, 2}, {3, 3}, {3, 3}});
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.dead_count(), 2);
  EXPECT_EQ(b.dead_count(), 2);
  EXPECT_EQ(a.digest().substr(0, 6), "fnv1a:");
  const ArrayState c(14, 12, {{3, 4}});
  EXPECT_NE(c.digest(), a.digest());
  // An intact concrete array digests to the all-live sentinel: it
  // schedules identically to the universal state.
  const ArrayState intact(14, 12, {});
  EXPECT_TRUE(intact.concrete());
  EXPECT_EQ(intact.digest(), "live");
}

TEST(ArrayState, SpareRemapperSnapshotCountsOnlyUnsparedDeaths) {
  rel::SpareRemapper spared(14, 12, 2);
  (void)spared.fault_primary(3, 3);
  EXPECT_EQ(ArrayState(spared).digest(), "live");  // the spare carries it
  rel::SpareRemapper bare(14, 12, 0);
  (void)bare.fault_primary(3, 3);
  const ArrayState state(bare);
  EXPECT_EQ(state.dead_count(), 1);
  EXPECT_TRUE(state.dead(3, 3));
  EXPECT_EQ(state.digest(), ArrayState(14, 12, {{3, 3}}).digest());
}

// --------------------------------------------------------- pareto fronts ----

TEST(Pareto, FrontContainsTheEnergyOptimum) {
  Mapper mapper(arch::eyeriss_like(), ObjectiveSpec{});
  const nn::LayerSpec layer = resnet_c5_like();
  const LayerSchedule sched = mapper.schedule_layer(layer);
  const LayerParetoFront front = mapper.pareto_layer(layer);
  ASSERT_FALSE(front.points.empty());
  // Exactly one selected member, and under the energy objective it is the
  // argmin search's schedule, bit for bit.
  const auto selected = std::find_if(front.points.begin(), front.points.end(),
                                     [](const ParetoPoint& p) {
                                       return p.selected;
                                     });
  ASSERT_NE(selected, front.points.end());
  EXPECT_EQ(std::count_if(front.points.begin(), front.points.end(),
                          [](const ParetoPoint& p) { return p.selected; }),
            1);
  EXPECT_EQ(selected->energy, sched.energy);
  EXPECT_EQ(selected->cycles, sched.cycles);
  EXPECT_EQ(selected->tiles, sched.tiles);
  EXPECT_EQ(selected->mapping, sched.mapping);
  // Canonical order puts the front-wide energy minimum first.
  EXPECT_EQ(front.points.front().energy, sched.energy);
  for (const ParetoPoint& p : front.points) {
    EXPECT_GE(p.energy, sched.energy);
  }
}

TEST(Pareto, DominanceIsIrreflexiveAndTransitiveOnRealFronts) {
  Mapper mapper(arch::eyeriss_like(), ObjectiveSpec{});
  const nn::Network net = nn::make_squeezenet();
  std::vector<ParetoPoint> pool;
  for (const nn::LayerSpec& layer : net.layers()) {
    const LayerParetoFront front = mapper.pareto_layer(layer);
    // A front is dominance-free by construction.
    for (const ParetoPoint& a : front.points) {
      for (const ParetoPoint& b : front.points) {
        EXPECT_FALSE(dominates(a, b) && dominates(b, a));
        if (&a != &b) {
          EXPECT_FALSE(dominates(a, b));
        }
      }
    }
    pool.insert(pool.end(), front.points.begin(), front.points.end());
  }
  ASSERT_GT(pool.size(), 2u);
  for (const ParetoPoint& a : pool) EXPECT_FALSE(dominates(a, a));
  // Transitivity over the pooled cross-layer points (these DO dominate
  // each other across layers, exercising the non-trivial case).
  for (const ParetoPoint& a : pool) {
    for (const ParetoPoint& b : pool) {
      if (!dominates(a, b)) continue;
      for (const ParetoPoint& c : pool) {
        if (dominates(b, c)) {
          EXPECT_TRUE(dominates(a, c));
        }
      }
    }
  }
}

TEST(Pareto, WeightedFrontBitIdenticalAcrossThreadCounts) {
  const nn::Network net = nn::make_squeezenet();
  const ObjectiveSpec objective = ObjectiveSpec::weighted(0.2, 0.7, 0.1);
  Mapper serial(arch::eyeriss_like(), objective, {}, MapperOptions{true, 1});
  const NetworkParetoFront want = serial.pareto_network(net);
  ASSERT_EQ(want.layers.size(), net.layer_count());
  for (const int threads : {8, 0}) {
    Mapper mapper(arch::eyeriss_like(), objective, {},
                  MapperOptions{true, threads});
    const NetworkParetoFront got = mapper.pareto_network(net);
    ASSERT_EQ(got.layers.size(), want.layers.size()) << threads;
    for (std::size_t i = 0; i < want.layers.size(); ++i) {
      EXPECT_EQ(got.layers[i].layer_name, want.layers[i].layer_name);
      // ParetoPoint equality is field-exact — bit-identical, not "close".
      EXPECT_EQ(got.layers[i].points, want.layers[i].points)
          << "layer " << want.layers[i].layer_name << " at threads="
          << threads;
    }
  }
}

TEST(Pareto, DegradedFrontsNeverPlaceWorkOnDeadPes) {
  const arch::AcceleratorConfig accel = arch::eyeriss_like();
  const ArrayState state(accel.array_width, accel.array_height,
                         {{0, 0}, {5, 3}, {13, 11}});
  Mapper mapper(accel, ObjectiveSpec::lifetime(), {}, {}, state);
  const NetworkParetoFront front =
      mapper.pareto_network(nn::make_squeezenet());
  EXPECT_EQ(front.array_digest, state.digest());
  EXPECT_EQ(front.live_pes, 168 - 3);
  for (const LayerParetoFront& layer : front.layers) {
    ASSERT_FALSE(layer.points.empty());
    for (const ParetoPoint& p : layer.points) {
      // The anchored sx×sy utilization window must avoid every dead PE
      // (torus wrap, matching the RWL rotation geometry).
      for (std::int64_t du = 0; du < p.mapping.sx; ++du) {
        for (std::int64_t dv = 0; dv < p.mapping.sy; ++dv) {
          EXPECT_FALSE(state.dead((p.anchor_u + du) % accel.array_width,
                                  (p.anchor_v + dv) % accel.array_height))
              << layer.layer_name << " " << p.mapping.str();
        }
      }
    }
  }
}

TEST(Pareto, LifetimeSelectionMaximizesProjectedMttf) {
  const nn::LayerSpec layer = resnet_c5_like();
  Mapper life(arch::eyeriss_like(), ObjectiveSpec::lifetime());
  const LayerParetoFront front = life.pareto_layer(layer);
  const auto selected = std::find_if(front.points.begin(), front.points.end(),
                                     [](const ParetoPoint& p) {
                                       return p.selected;
                                     });
  ASSERT_NE(selected, front.points.end());
  for (const ParetoPoint& p : front.points) {
    EXPECT_GE(selected->mttf, p.mttf);
  }
  // …and it never projects a shorter life than the energy pick.
  Mapper energy(arch::eyeriss_like(), ObjectiveSpec{});
  const LayerParetoFront efront = energy.pareto_layer(layer);
  const auto eselected = std::find_if(
      efront.points.begin(), efront.points.end(),
      [](const ParetoPoint& p) { return p.selected; });
  ASSERT_NE(eselected, efront.points.end());
  EXPECT_GE(selected->mttf, eselected->mttf);
}

// The deprecated two-argument shim must stay byte-identical to the energy
// objective while it lives; this is its one sanctioned use in the repo.
TEST(Mapper, DeprecatedShimMatchesEnergyObjective) {
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
  Mapper legacy(arch::eyeriss_like());  // rota-lint: allow(mapper-objective)
#pragma GCC diagnostic pop
  EXPECT_EQ(legacy.objective(), ObjectiveSpec{});
  Mapper current(arch::eyeriss_like(), ObjectiveSpec{});
  const nn::Network net = nn::make_squeezenet();
  const NetworkSchedule a = legacy.schedule_network(net);
  const NetworkSchedule b = current.schedule_network(net);
  ASSERT_EQ(a.layers.size(), b.layers.size());
  for (std::size_t i = 0; i < a.layers.size(); ++i) {
    EXPECT_EQ(a.layers[i].energy, b.layers[i].energy);
    EXPECT_EQ(a.layers[i].cycles, b.layers[i].cycles);
    EXPECT_EQ(a.layers[i].tiles, b.layers[i].tiles);
    EXPECT_EQ(a.layers[i].mapping, b.layers[i].mapping);
  }
}

}  // namespace
}  // namespace rota::sched
