#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <string>
#include <unordered_set>
#include <vector>

#include "core/experiment.hpp"
#include "nn/workloads.hpp"
#include "obs/metrics.hpp"
#include "par/parallel.hpp"
#include "par/thread_pool.hpp"
#include "reliability/monte_carlo.hpp"
#include "sched/mapper.hpp"
#include "sched/serialize.hpp"
#include "util/check.hpp"
#include "wear/policy.hpp"

/// \file par_test.cpp
/// The determinism contract of rota::par (DESIGN.md §9): thread count
/// never changes any numeric result — schedules, Monte-Carlo estimates
/// and experiment grids must be bit-identical for 1, 8 and hardware
/// lanes. Plus thread-pool unit tests (every index runs once, exception
/// plumbing, nesting) that double as the TSan stress surface.

namespace rota {
namespace {

using util::precondition_error;

// ---------------------------------------------------------- thread pool ----

TEST(ResolveThreads, ZeroMeansHardwareAndPositivePassesThrough) {
  EXPECT_GE(par::resolve_threads(0), 1u);
  EXPECT_EQ(par::resolve_threads(1), 1u);
  EXPECT_EQ(par::resolve_threads(5), 5u);
  EXPECT_THROW((void)par::resolve_threads(-1), precondition_error);
}

TEST(ThreadPool, SharedPoolHasAtLeastEightWorkers) {
  EXPECT_GE(par::ThreadPool::shared().worker_count(), 8u);
}

TEST(ThreadPool, RunBatchExecutesEveryIndexExactlyOnce) {
  constexpr std::size_t kTasks = 997;  // prime: no lane divides it evenly
  std::vector<std::atomic<int>> hits(kTasks);
  par::ThreadPool::shared().run_batch(kTasks, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, RespectsMaxConcurrency) {
  std::atomic<int> live{0};
  std::atomic<int> peak{0};
  par::ThreadPool::shared().run_batch(
      64,
      [&live, &peak](std::size_t) {
        const int now = live.fetch_add(1, std::memory_order_acq_rel) + 1;
        int seen = peak.load(std::memory_order_relaxed);
        while (now > seen &&
               !peak.compare_exchange_weak(seen, now,
                                           std::memory_order_relaxed)) {
        }
        live.fetch_sub(1, std::memory_order_acq_rel);
      },
      2);
  EXPECT_LE(peak.load(), 2);
}

TEST(ThreadPool, LowestFailingIndexWins) {
  try {
    par::ThreadPool::shared().run_batch(100, [](std::size_t i) {
      if (i == 97 || i == 23 || i == 61) {
        throw std::runtime_error("task " + std::to_string(i));
      }
    });
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 23");
  }
}

TEST(ThreadPool, NestedBatchesRunInlineWithoutDeadlock) {
  std::vector<std::atomic<int>> hits(16 * 16);
  par::ThreadPool::shared().run_batch(16, [&hits](std::size_t outer) {
    // A nested batch from a pool worker must degrade to inline serial
    // execution instead of blocking the worker on its siblings.
    par::ThreadPool::shared().run_batch(16, [&hits, outer](std::size_t inner) {
      hits[outer * 16 + inner].fetch_add(1, std::memory_order_relaxed);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

/// Contention stress for TSan: many small batches racing on the shared
/// pool. ROTA_PAR_HAMMER=1 (set by the CI tsan job) scales the rounds up.
TEST(ThreadPool, HammerManySmallBatches) {
  const bool hammer = std::getenv("ROTA_PAR_HAMMER") != nullptr;
  const int rounds = hammer ? 200 : 20;
  auto& reg = obs::MetricsRegistry::global();
  const bool was_enabled = reg.enabled();
  reg.set_enabled(true);  // exercise the metered task path too
  for (int r = 0; r < rounds; ++r) {
    std::atomic<std::int64_t> sum{0};
    par::parallel_for(33, 8, [&sum](std::int64_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    ASSERT_EQ(sum.load(), 33 * 32 / 2);
  }
  reg.set_enabled(was_enabled);
}

// ------------------------------------------------------- parallel loops ----

TEST(ParallelFor, SlotResultsIdenticalAcrossThreadCounts) {
  constexpr std::int64_t kN = 513;
  auto fill = [](int threads) {
    std::vector<double> out(kN);
    par::parallel_for(kN, threads, [&out](std::int64_t i) {
      double v = 1.0;
      for (int k = 0; k < 40; ++k) {
        v = v * 0.5 + static_cast<double>(i) / (v + 1.0);
      }
      out[static_cast<std::size_t>(i)] = v;
    });
    return out;
  };
  const std::vector<double> serial = fill(1);
  EXPECT_EQ(serial, fill(8));
  EXPECT_EQ(serial, fill(0));
}

TEST(ParallelReduce, FoldOrderIsFixedSoFloatSumsMatchExactly) {
  constexpr std::int64_t kChunks = 257;
  auto sum = [](int threads) {
    return par::parallel_reduce<double>(
        kChunks, threads, 0.0,
        [](std::int64_t c) { return 1.0 / (1.0 + static_cast<double>(c)); },
        [](double acc, double part) { return acc + part; });
  };
  const double serial = sum(1);
  // Bit-identical, not just close: the fold runs in ascending chunk order
  // on the calling thread for every lane count.
  EXPECT_EQ(serial, sum(8));
  EXPECT_EQ(serial, sum(0));
}

TEST(ParallelReduce, ConcatenationPreservesChunkOrder) {
  auto concat = [](int threads) {
    return par::parallel_reduce<std::vector<std::int64_t>>(
        64, threads, {},
        [](std::int64_t c) {
          return std::vector<std::int64_t>{c * 2, c * 2 + 1};
        },
        [](std::vector<std::int64_t> acc, std::vector<std::int64_t> part) {
          acc.insert(acc.end(), part.begin(), part.end());
          return acc;
        });
  };
  const auto serial = concat(1);
  ASSERT_EQ(serial.size(), 128u);
  for (std::int64_t i = 0; i < 128; ++i) {
    EXPECT_EQ(serial[static_cast<std::size_t>(i)], i);
  }
  EXPECT_EQ(serial, concat(8));
}

// ---------------------------------------------------- mapper determinism ----

std::string schedule_csv(const nn::Network& net, int threads) {
  sched::Mapper mapper(arch::rota_like(), sched::ObjectiveSpec{}, {},
                       sched::MapperOptions{true, threads});
  const sched::NetworkSchedule ns = mapper.schedule_network(net);
  std::ostringstream out;
  sched::write_schedule_csv(ns, out);
  return out.str();
}

TEST(MapperPar, SqueezeNetScheduleIdenticalAcrossThreadCounts) {
  const nn::Network net = nn::make_squeezenet();
  const std::string serial = schedule_csv(net, 1);
  EXPECT_EQ(serial, schedule_csv(net, 8));
  EXPECT_EQ(serial, schedule_csv(net, 0));
}

TEST(MapperPar, CacheHoldsOneEntryPerUniqueShape) {
  const nn::Network net = nn::make_squeezenet();
  std::unordered_set<sched::LayerShapeKey, sched::LayerShapeKeyHash> unique;
  for (const nn::LayerSpec& layer : net.layers()) {
    unique.insert(sched::LayerShapeKey::of(layer));
  }
  sched::Mapper mapper(arch::rota_like(), sched::ObjectiveSpec{}, {},
                       sched::MapperOptions{true, 8});
  (void)mapper.schedule_network(net);
  EXPECT_EQ(mapper.cache_size(), unique.size());
}

// ----------------------------------------------- Monte-Carlo determinism ----

TEST(MonteCarloPar, MttfBitIdenticalAcrossThreadCounts) {
  std::vector<double> alphas(168);
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    alphas[i] = 1.0 + static_cast<double>(i % 7);
  }
  // Deliberately not a multiple of kMonteCarloChunkTrials: the tail chunk
  // must behave the same in serial and parallel runs.
  const std::int64_t trials = 2 * rel::kMonteCarloChunkTrials + 100;
  const auto serial = rel::monte_carlo_mttf(alphas, 2.0, 1.0, trials, 7, 1);
  for (int threads : {8, 0}) {
    const auto par_run =
        rel::monte_carlo_mttf(alphas, 2.0, 1.0, trials, 7, threads);
    EXPECT_DOUBLE_EQ(serial.mttf, par_run.mttf) << threads;
    EXPECT_DOUBLE_EQ(serial.stderr_, par_run.stderr_) << threads;
    EXPECT_EQ(serial.trials, par_run.trials) << threads;
  }
}

TEST(MonteCarloPar, ReliabilityBitIdenticalAcrossThreadCounts) {
  const std::vector<double> alphas{1.0, 2.0, 3.0, 4.0};
  const std::int64_t trials = rel::kMonteCarloChunkTrials + 33;
  const double serial =
      rel::monte_carlo_reliability(alphas, 0.2, 2.0, 1.0, trials, 11, 1);
  EXPECT_DOUBLE_EQ(serial, rel::monte_carlo_reliability(alphas, 0.2, 2.0, 1.0,
                                                        trials, 11, 8));
}

TEST(MonteCarloPar, VariationSweepBitIdenticalAcrossThreadCounts) {
  std::vector<double> base(24);
  std::vector<double> wl(24);
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = static_cast<double>(i % 6);
    wl[i] = 2.0 + static_cast<double>(i % 2);
  }
  const std::int64_t trials = 3 * rel::kVariationChunkTrials + 7;
  const auto serial =
      rel::lifetime_improvement_under_variation(base, wl, 2.0, 0.1, trials,
                                                13, 1);
  const auto par_run =
      rel::lifetime_improvement_under_variation(base, wl, 2.0, 0.1, trials,
                                                13, 8);
  EXPECT_DOUBLE_EQ(serial.mean, par_run.mean);
  EXPECT_DOUBLE_EQ(serial.p05, par_run.p05);
  EXPECT_DOUBLE_EQ(serial.p50, par_run.p50);
  EXPECT_DOUBLE_EQ(serial.p95, par_run.p95);
  EXPECT_EQ(serial.trials, par_run.trials);
}

// ------------------------------------------------ experiment determinism ----

const std::vector<wear::PolicyKind>& test_policies() {
  static const std::vector<wear::PolicyKind> kinds{
      wear::PolicyKind::kBaseline, wear::PolicyKind::kRwl,
      wear::PolicyKind::kRwlRo, wear::PolicyKind::kRandomStart};
  return kinds;
}

void expect_same_result(const ExperimentResult& a, const ExperimentResult& b) {
  EXPECT_EQ(a.network_abbr, b.network_abbr);
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].kind, b.runs[i].kind);
    EXPECT_EQ(a.runs[i].policy_name, b.runs[i].policy_name);
    EXPECT_EQ(a.runs[i].usage, b.runs[i].usage) << a.runs[i].policy_name;
    EXPECT_EQ(a.runs[i].stats.max_diff, b.runs[i].stats.max_diff);
    EXPECT_DOUBLE_EQ(a.runs[i].stats.r_diff, b.runs[i].stats.r_diff);
  }
  std::ostringstream csv_a;
  std::ostringstream csv_b;
  sched::write_schedule_csv(a.schedule, csv_a);
  sched::write_schedule_csv(b.schedule, csv_b);
  EXPECT_EQ(csv_a.str(), csv_b.str());
}

ExperimentResult run_once(int threads) {
  ExperimentConfig cfg;
  cfg.iterations = 50;
  cfg.threads = threads;
  Experiment exp(cfg);
  return exp.run(nn::make_squeezenet(), test_policies());
}

TEST(ExperimentPar, RunIdenticalAcrossThreadCounts) {
  const ExperimentResult serial = run_once(1);
  expect_same_result(serial, run_once(8));
  expect_same_result(serial, run_once(0));
}

TEST(ExperimentPar, SweepMatchesPerNetworkRuns) {
  const std::vector<nn::Network> nets{nn::make_squeezenet(),
                                      nn::make_alexnet()};
  ExperimentConfig cfg;
  cfg.iterations = 25;

  cfg.threads = 1;
  Experiment serial_exp(cfg);
  std::vector<ExperimentResult> expected;
  expected.reserve(nets.size());
  for (const nn::Network& net : nets) {
    expected.push_back(serial_exp.run(net, test_policies()));
  }

  cfg.threads = 8;
  Experiment par_exp(cfg);
  const std::vector<ExperimentResult> sweep =
      par_exp.run_sweep(nets, test_policies());
  ASSERT_EQ(sweep.size(), expected.size());
  for (std::size_t n = 0; n < sweep.size(); ++n) {
    expect_same_result(expected[n], sweep[n]);
  }
}

}  // namespace
}  // namespace rota
