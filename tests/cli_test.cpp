#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "cli/commands.hpp"
#include "cli/options.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace rota::cli {
namespace {

using util::precondition_error;

// -------------------------------------------------------------- parsing ----

TEST(CliParse, EmptyArgsMeansHelp) {
  EXPECT_EQ(parse({}).verb, Verb::kHelp);
  EXPECT_EQ(parse({"help"}).verb, Verb::kHelp);
  EXPECT_EQ(parse({"--help"}).verb, Verb::kHelp);
}

TEST(CliParse, VerbsRecognized) {
  EXPECT_EQ(parse({"workloads"}).verb, Verb::kWorkloads);
  EXPECT_EQ(parse({"area"}).verb, Verb::kArea);
  EXPECT_EQ(parse({"schedule", "Sqz"}).verb, Verb::kSchedule);
  EXPECT_EQ(parse({"wear", "Sqz"}).verb, Verb::kWear);
  EXPECT_EQ(parse({"lifetime", "Sqz"}).verb, Verb::kLifetime);
}

TEST(CliParse, UnknownVerbThrowsWithUsage) {
  try {
    parse({"frobnicate"});
    FAIL();
  } catch (const precondition_error& e) {
    EXPECT_NE(std::string(e.what()).find("usage"), std::string::npos);
  }
}

TEST(CliParse, WorkloadRequiredForPerWorkloadVerbs) {
  EXPECT_THROW(parse({"schedule"}), precondition_error);
  EXPECT_THROW(parse({"wear", "--iters", "3"}), precondition_error);
}

TEST(CliParse, FlagsParse) {
  const Options o = parse({"wear", "YL", "--array", "20x16", "--iters", "77",
                           "--policy", "RWL", "--metric", "cycles",
                           "--pgm", "/tmp/x.pgm"});
  EXPECT_EQ(o.workload, "YL");
  EXPECT_EQ(o.array_width, 20);
  EXPECT_EQ(o.array_height, 16);
  EXPECT_EQ(o.iterations, 77);
  EXPECT_EQ(o.policy, wear::PolicyKind::kRwl);
  EXPECT_EQ(o.metric, wear::WearMetric::kActiveCycles);
  EXPECT_EQ(o.pgm_path, "/tmp/x.pgm");

  const Options l = parse({"lifetime", "Sqz", "--spares", "3"});
  EXPECT_EQ(l.spares, 3);
}

TEST(CliParse, DefaultsAreSane) {
  const Options o = parse({"lifetime", "Sqz"});
  EXPECT_EQ(o.array_width, 14);
  EXPECT_EQ(o.array_height, 12);
  EXPECT_EQ(o.iterations, 1000);
  EXPECT_EQ(o.policy, wear::PolicyKind::kRwlRo);
  EXPECT_EQ(o.metric, wear::WearMetric::kAllocations);
  EXPECT_EQ(o.threads, 1);  // serial unless --threads is given
}

TEST(CliParse, ThreadsFlag) {
  EXPECT_EQ(parse({"lifetime", "Sqz", "--threads", "4"}).threads, 4);
  // 0 = one lane per hardware thread (resolved later by par::).
  EXPECT_EQ(parse({"lifetime", "Sqz", "--threads", "0"}).threads, 0);
  EXPECT_THROW(parse({"lifetime", "Sqz", "--threads", "-2"}),
               precondition_error);
  EXPECT_THROW(parse({"lifetime", "Sqz", "--threads"}), precondition_error);
}

TEST(CliParse, BadValuesRejected) {
  EXPECT_THROW(parse({"wear", "Sqz", "--iters", "0"}), precondition_error);
  EXPECT_THROW(parse({"wear", "Sqz", "--iters", "abc"}), precondition_error);
  EXPECT_THROW(parse({"wear", "Sqz", "--array", "14"}), precondition_error);
  EXPECT_THROW(parse({"wear", "Sqz", "--array", "x12"}), precondition_error);
  EXPECT_THROW(parse({"wear", "Sqz", "--metric", "joules"}),
               precondition_error);
  EXPECT_THROW(parse({"wear", "Sqz", "--policy", "magic"}),
               precondition_error);
  EXPECT_THROW(parse({"lifetime", "Sqz", "--spares", "-1"}),
               precondition_error);
  EXPECT_THROW(parse({"wear", "Sqz", "--iters"}), precondition_error);
  EXPECT_THROW(parse({"wear", "Sqz", "--nope"}), precondition_error);
}

TEST(CliParse, OptionsAreSubcommandScoped) {
  // A flag that exists but belongs to a different verb is rejected with a
  // message naming the verb, not silently ignored.
  try {
    parse({"lifetime", "Sqz", "--policy", "RWL"});
    FAIL() << "lifetime must reject --policy (it compares all schemes)";
  } catch (const precondition_error& e) {
    EXPECT_NE(std::string(e.what()).find("not accepted by 'rota lifetime'"),
              std::string::npos)
        << e.what();
  }
  EXPECT_THROW(parse({"schedule", "Sqz", "--iters", "5"}),
               precondition_error);
  EXPECT_THROW(parse({"wear", "Sqz", "--csv", "/tmp/x.csv"}),
               precondition_error);
  EXPECT_THROW(parse({"area", "--iters", "5"}), precondition_error);
  EXPECT_THROW(parse({"workloads", "--array", "8x8"}), precondition_error);
  EXPECT_THROW(parse({"serve", "--policy", "RWL"}), precondition_error);
  EXPECT_THROW(parse({"version", "--metrics", "/tmp/m.json"}),
               precondition_error);

  // A flag that exists nowhere gets the "unknown option for" wording.
  try {
    parse({"wear", "Sqz", "--frobnicate"});
    FAIL() << "unknown options must be rejected";
  } catch (const precondition_error& e) {
    EXPECT_NE(std::string(e.what()).find("unknown option '--frobnicate' "
                                         "for 'rota wear'"),
              std::string::npos)
        << e.what();
  }
}

TEST(CliParse, FaultToolingVerbsRecognized) {
  EXPECT_EQ(parse({"inject", "Sqz", "--fault", "pe=1,1@10"}).verb,
            Verb::kInject);
  EXPECT_EQ(parse({"sweep"}).verb, Verb::kSweep);
  EXPECT_EQ(parse({"mc", "Sqz"}).verb, Verb::kMc);
}

TEST(CliParse, InjectFlagsAndDefaults) {
  const Options o = parse({"inject", "Sqz", "--fault", "pe=1,1@10",
                           "--fault", "rank=0@500", "--seed", "7"});
  EXPECT_EQ(o.verb, Verb::kInject);
  EXPECT_EQ(o.workload, "Sqz");
  ASSERT_EQ(o.faults.size(), 2u);
  EXPECT_EQ(o.faults[0], "pe=1,1@10");
  EXPECT_EQ(o.faults[1], "rank=0@500");
  // inject defaults to a small spare pool; lifetime keeps zero spares.
  EXPECT_EQ(o.spares, 4);
  EXPECT_EQ(parse({"lifetime", "Sqz"}).spares, 0);
  EXPECT_EQ(parse({"inject", "Sqz", "--spares", "0"}).spares, 0);
  // inject is per-workload: the abbreviation is mandatory.
  EXPECT_THROW(parse({"inject"}), precondition_error);
}

TEST(CliParse, SweepAndMcFlags) {
  const Options s = parse({"sweep", "--checkpoint", "/tmp/s.ckpt", "--csv",
                           "/tmp/s.csv", "--iters", "200"});
  EXPECT_EQ(s.checkpoint_path, "/tmp/s.ckpt");
  EXPECT_EQ(s.csv_out_path, "/tmp/s.csv");
  EXPECT_EQ(s.iterations, 200);

  const Options m = parse({"mc", "Sqz", "--trials", "5000", "--checkpoint",
                           "/tmp/m.ckpt"});
  EXPECT_EQ(m.trials, 5000);
  EXPECT_EQ(m.checkpoint_path, "/tmp/m.ckpt");
  EXPECT_EQ(parse({"mc", "Sqz"}).trials, 100000);

  EXPECT_THROW(parse({"mc", "Sqz", "--trials", "0"}), precondition_error);
  EXPECT_THROW(parse({"sweep", "--checkpoint", ""}), precondition_error);
}

TEST(CliParse, FaultFlagsAreSubcommandScoped) {
  // --fault belongs to inject, --trials to mc, --queue-cap to serve.
  EXPECT_THROW(parse({"wear", "Sqz", "--fault", "pe=1,1@10"}),
               precondition_error);
  EXPECT_THROW(parse({"sweep", "--trials", "100"}), precondition_error);
  EXPECT_THROW(parse({"inject", "Sqz", "--queue-cap", "4"}),
               precondition_error);
  EXPECT_THROW(parse({"sweep", "--fault", "pe=1,1@10"}), precondition_error);
  EXPECT_EQ(parse({"serve", "--queue-cap", "8"}).queue_cap, 8);
  EXPECT_THROW(parse({"serve", "--queue-cap", "-1"}), precondition_error);
}

TEST(CliRun, UsageMentionsFaultTooling) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"help"}), out), 0);
  const std::string text = out.str();
  EXPECT_NE(text.find("inject"), std::string::npos);
  EXPECT_NE(text.find("sweep"), std::string::npos);
  EXPECT_NE(text.find("--checkpoint"), std::string::npos);
  EXPECT_NE(text.find("SIGINT"), std::string::npos);
}

TEST(CliRun, InjectRequiresAtLeastOneFault) {
  std::ostringstream out;
  EXPECT_THROW(run(parse({"inject", "Sqz"}), out), precondition_error);
}

TEST(CliRun, InjectReportsRemappingAndDegradedMttf) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"inject", "Sqz", "--array", "8x8", "--iters", "50",
                       "--fault", "pe=1,1@10", "--fault", "rank=0@25"}),
                out),
            0);
  const std::string text = out.str();
  EXPECT_NE(text.find("faults injected"), std::string::npos);
  EXPECT_NE(text.find("redirected units"), std::string::npos);
  EXPECT_NE(text.find("MTTF, full spare pool:"), std::string::npos);
  EXPECT_NE(text.find("degraded:"), std::string::npos);
}

TEST(CliParse, ServeVerbAndFlags) {
  const Options o = parse({"serve", "--threads", "2", "--cache-dir",
                           "/tmp/rsc", "--cache-cap", "128", "--batch",
                           "16"});
  EXPECT_EQ(o.verb, Verb::kServe);
  EXPECT_EQ(o.threads, 2);
  EXPECT_EQ(o.cache_dir, "/tmp/rsc");
  EXPECT_EQ(o.cache_capacity, 128);
  EXPECT_EQ(o.max_batch, 16);
  EXPECT_THROW(parse({"serve", "--cache-cap", "0"}), precondition_error);
  EXPECT_THROW(parse({"serve", "--batch", "-1"}), precondition_error);
}

TEST(CliParse, PolicyNamesRoundTrip) {
  for (wear::PolicyKind kind :
       {wear::PolicyKind::kBaseline, wear::PolicyKind::kRwl,
        wear::PolicyKind::kRwlRo, wear::PolicyKind::kRandomStart,
        wear::PolicyKind::kDiagonalStride}) {
    EXPECT_EQ(parse_policy(wear::to_string(kind)), kind);
  }
}

TEST(CliParse, GeometryParser) {
  std::int64_t w = 0;
  std::int64_t h = 0;
  parse_geometry("32x24", w, h);
  EXPECT_EQ(w, 32);
  EXPECT_EQ(h, 24);
  EXPECT_THROW(parse_geometry("32", w, h), precondition_error);
  EXPECT_THROW(parse_geometry("0x4", w, h), precondition_error);
}

// ------------------------------------------------------------- commands ----

TEST(CliRun, HelpPrintsUsage) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({}), out), 0);
  EXPECT_NE(out.str().find("usage"), std::string::npos);
}

TEST(CliRun, WorkloadsListsAllNine) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"workloads"}), out), 0);
  for (const char* abbr : {"Res", "Inc", "YL", "Sqz", "Mb", "Eff", "VT",
                           "MVT", "LM"}) {
    EXPECT_NE(out.str().find(abbr), std::string::npos) << abbr;
  }
}

TEST(CliRun, ScheduleShowsSpacesAndUtil) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"schedule", "Sqz"}), out), 0);
  EXPECT_NE(out.str().find("fire2_squeeze1x1"), std::string::npos);
  EXPECT_NE(out.str().find("mean utilization"), std::string::npos);
}

TEST(CliRun, WearPrintsStatsAndHeatmap) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"wear", "Sqz", "--iters", "5"}), out), 0);
  EXPECT_NE(out.str().find("D_max"), std::string::npos);
  EXPECT_NE(out.str().find("scale:"), std::string::npos);
}

TEST(CliRun, LifetimeComparesSchemes) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"lifetime", "Sqz", "--iters", "20"}), out), 0);
  EXPECT_NE(out.str().find("Baseline"), std::string::npos);
  EXPECT_NE(out.str().find("RWL+RO"), std::string::npos);
}

TEST(CliRun, LifetimeWithSpares) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"lifetime", "Sqz", "--iters", "20", "--spares", "2"}),
                out),
            0);
  EXPECT_NE(out.str().find("spare"), std::string::npos);
}

TEST(CliRun, ThermalReportsBothGains) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"thermal", "Sqz", "--iters", "20"}), out), 0);
  EXPECT_NE(out.str().find("peak"), std::string::npos);
  EXPECT_NE(out.str().find("thermally coupled"), std::string::npos);
}

TEST(CliParse, ThermalNeedsWorkload) {
  EXPECT_THROW(parse({"thermal"}), precondition_error);
}

TEST(CliRun, AreaReportsOverhead) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"area"}), out), 0);
  EXPECT_NE(out.str().find("overhead"), std::string::npos);
}

TEST(CliRun, ScheduleCsvExportRoundTrips) {
  const std::string path = ::testing::TempDir() + "/rota_cli_sched.csv";
  std::ostringstream out;
  EXPECT_EQ(run(parse({"schedule", "Sqz", "--csv", path}), out), 0);
  EXPECT_NE(out.str().find("wrote"), std::string::npos);

  // Feed the exported schedule back through `wear --schedule`.
  std::ostringstream wear_out;
  EXPECT_EQ(run(parse({"wear", "--schedule", path, "--iters", "3"}),
                wear_out),
            0);
  EXPECT_NE(wear_out.str().find("imported schedule"), std::string::npos);
  EXPECT_NE(wear_out.str().find("D_max"), std::string::npos);
  std::remove(path.c_str());
}

TEST(CliParse, WearAcceptsScheduleInsteadOfWorkload) {
  const Options o = parse({"wear", "--schedule", "/tmp/s.csv"});
  EXPECT_EQ(o.verb, Verb::kWear);
  EXPECT_TRUE(o.workload.empty());
  EXPECT_EQ(o.schedule_path, "/tmp/s.csv");
  // schedule/lifetime still require a workload.
  EXPECT_THROW(parse({"schedule", "--csv", "/tmp/x.csv"}),
               precondition_error);
}

TEST(CliRun, WearMissingScheduleFileErrors) {
  std::ostringstream out;
  EXPECT_THROW(
      run(parse({"wear", "--schedule", "/nonexistent/nope.csv"}), out),
      precondition_error);
}

TEST(CliRun, UnknownWorkloadSurfacesAsPreconditionError) {
  std::ostringstream out;
  EXPECT_THROW(run(parse({"schedule", "Zzz"}), out), precondition_error);
}

TEST(CliRun, CustomArrayPropagates) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"wear", "Sqz", "--iters", "3", "--array", "8x8"}),
                out),
            0);
  // The 8×8 heatmap has 8 rows of 8 cells + scale line; the 14-wide one
  // would have longer lines. Just check it ran and produced a heatmap.
  EXPECT_NE(out.str().find("scale:"), std::string::npos);
}

TEST(CliRun, ServeAnswersJsonLinesOnStdout) {
  std::istringstream in(
      "{\"schema_version\":2,\"id\":\"q1\",\"op\":\"ping\"}\n"
      "garbage line\n"
      "{\"schema_version\":2,\"id\":\"q2\",\"op\":\"wear\","
      "\"workload\":\"Sqz\",\"array\":\"8x8\",\"iters\":5}\n"
      "{\"schema_version\":2,\"id\":\"q3\",\"op\":\"shutdown\"}\n");
  std::ostringstream out;
  EXPECT_EQ(run(parse({"serve", "--threads", "2"}), in, out), 0);
  std::vector<std::string> lines;
  std::string line;
  std::istringstream replies(out.str());
  while (std::getline(replies, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 4u);  // one reply per line, input order
  EXPECT_NE(lines[0].find("\"id\":\"q1\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(lines[1].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(lines[1].find("invalid_argument"), std::string::npos);
  EXPECT_NE(lines[2].find("\"id\":\"q2\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"d_max\""), std::string::npos);
  EXPECT_NE(lines[3].find("\"stopping\":true"), std::string::npos);
  for (const std::string& reply : lines) {
    EXPECT_EQ(reply.rfind("{\"schema_version\":2,", 0), 0u) << reply;
  }
}

TEST(CliRun, ServeGetsEmptyInputFromLegacyOverload) {
  // The two-argument run() hands serve an empty stream: it must come back
  // immediately with exit code 0 and no replies.
  std::ostringstream out;
  EXPECT_EQ(run(parse({"serve"}), out), 0);
  EXPECT_TRUE(out.str().empty());
}

// -------------------------------------------------------- observability ----

TEST(CliParse, ObservabilityFlagsParse) {
  const Options o = parse({"wear", "Sqz", "--metrics", "/tmp/m.json",
                           "--trace", "/tmp/t.json", "--progress", "-v",
                           "--seed", "42"});
  EXPECT_EQ(o.metrics_path, "/tmp/m.json");
  EXPECT_EQ(o.trace_path, "/tmp/t.json");
  EXPECT_TRUE(o.progress);
  EXPECT_TRUE(o.verbose);
  EXPECT_EQ(o.seed, 42u);
  EXPECT_NE(o.raw_args.find("--metrics"), std::string::npos);
}

TEST(CliParse, ObservabilityDefaultsOff) {
  const Options o = parse({"wear", "Sqz"});
  EXPECT_TRUE(o.metrics_path.empty());
  EXPECT_TRUE(o.trace_path.empty());
  EXPECT_FALSE(o.progress);
  EXPECT_FALSE(o.verbose);
  EXPECT_EQ(o.mc_trials, 0);
}

TEST(CliParse, VersionVerbForms) {
  EXPECT_EQ(parse({"version"}).verb, Verb::kVersion);
  EXPECT_EQ(parse({"--version"}).verb, Verb::kVersion);
  EXPECT_EQ(parse({"-V"}).verb, Verb::kVersion);
}

TEST(CliParse, BadObservabilityValuesRejected) {
  EXPECT_THROW(parse({"wear", "Sqz", "--seed", "abc"}), precondition_error);
  EXPECT_THROW(parse({"wear", "Sqz", "--seed", "-5"}), precondition_error);
  EXPECT_THROW(parse({"wear", "Sqz", "--metrics"}), precondition_error);
  EXPECT_THROW(parse({"lifetime", "Sqz", "--mc", "-1"}), precondition_error);
}

TEST(CliRun, VersionPrintsBuildIdentity) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"version"}), out), 0);
  EXPECT_NE(out.str().find("rota "), std::string::npos);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(CliRun, MetricsAndTraceSinksWriteValidJson) {
  const std::string metrics_path = ::testing::TempDir() + "rota_cli_m.json";
  const std::string trace_path = ::testing::TempDir() + "rota_cli_t.json";
  std::ostringstream out;
  EXPECT_EQ(run(parse({"wear", "Sqz", "--iters", "5", "--metrics",
                       metrics_path, "--trace", trace_path}),
                out),
            0);

  const std::string metrics = slurp(metrics_path);
  EXPECT_TRUE(obs::json_valid(metrics)) << metrics;
  for (const char* key : {"\"schema_version\"", "\"manifest\"", "\"metrics\"",
                          "\"git_sha\"", "\"seed\"", "\"workload\"",
                          "\"wear.iterations\""}) {
    EXPECT_NE(metrics.find(key), std::string::npos) << key;
  }

  const std::string trace = slurp(trace_path);
  EXPECT_TRUE(obs::json_valid(trace)) << trace;
  EXPECT_NE(trace.find("\"schema_version\""), std::string::npos);
  EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace.find("\"ph\":\"X\""), std::string::npos);
  std::remove(metrics_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(CliRun, MetricsSinkOffLeavesGlobalsDisabled) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"wear", "Sqz", "--iters", "3"}), out), 0);
  EXPECT_FALSE(obs::MetricsRegistry::global().enabled());
  EXPECT_FALSE(obs::Tracer::global().enabled());
}

TEST(CliRun, VerbosePrintsMetricsTable) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"wear", "Sqz", "--iters", "3", "-v"}), out), 0);
  EXPECT_NE(out.str().find("wear.iterations"), std::string::npos);
  EXPECT_FALSE(obs::MetricsRegistry::global().enabled());  // scope closed
}

TEST(CliRun, UnwritableMetricsPathReportsIoError) {
  std::ostringstream out;
  const int rc = run(parse({"wear", "Sqz", "--iters", "3", "--metrics",
                            "/nonexistent-dir/m.json"}),
                     out);
  EXPECT_EQ(rc, 1);
  EXPECT_NE(out.str().find("error"), std::string::npos);
}

TEST(CliRun, LifetimeMonteCarloCrossCheck) {
  std::ostringstream out;
  EXPECT_EQ(run(parse({"lifetime", "Sqz", "--iters", "10", "--mc", "200"}),
                out),
            0);
  EXPECT_NE(out.str().find("Monte-Carlo"), std::string::npos);
}

}  // namespace
}  // namespace rota::cli
