#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/api_v1.hpp"
#include "core/experiment.hpp"
#include "nn/workloads.hpp"
#include "obs/json.hpp"
#include "util/check.hpp"

namespace rota {
namespace {

using util::precondition_error;
using wear::PolicyKind;

ExperimentConfig quick_config(std::int64_t iterations = 50) {
  ExperimentConfig cfg;
  cfg.iterations = iterations;
  return cfg;
}

TEST(Experiment, RunsRequestedPoliciesInOrder) {
  Experiment exp(quick_config());
  const auto res = exp.run(nn::make_squeezenet(),
                           {PolicyKind::kBaseline, PolicyKind::kRwlRo});
  ASSERT_EQ(res.runs.size(), 2u);
  EXPECT_EQ(res.runs[0].kind, PolicyKind::kBaseline);
  EXPECT_EQ(res.runs[1].kind, PolicyKind::kRwlRo);
  EXPECT_EQ(res.network_abbr, "Sqz");
  EXPECT_EQ(res.iterations, 50);
}

TEST(Experiment, MissingPolicyLookupThrows) {
  Experiment exp(quick_config());
  const auto res = exp.run(nn::make_squeezenet(), {PolicyKind::kBaseline});
  // The deprecated throwing shim still throws...
  EXPECT_THROW((void)res.run(PolicyKind::kRwlRo), precondition_error);
  EXPECT_THROW((void)res.improvement_over_baseline(PolicyKind::kRwlRo),
               precondition_error);
}

TEST(Experiment, FindRunIsNonThrowing) {
  Experiment exp(quick_config());
  const auto res = exp.run(nn::make_squeezenet(),
                           {PolicyKind::kBaseline, PolicyKind::kRwl});
  const PolicyRun* base = res.find_run(PolicyKind::kBaseline);
  ASSERT_NE(base, nullptr);
  EXPECT_EQ(base->kind, PolicyKind::kBaseline);
  // find_run and the deprecated run() agree on present policies.
  EXPECT_EQ(base, &res.run(PolicyKind::kBaseline));
  // An absent policy is a nullptr, not an exception.
  EXPECT_EQ(res.find_run(PolicyKind::kRwlRo), nullptr);
}

TEST(ApiV1, ResultsInsteadOfExceptions) {
  namespace api = rota::api::v1;
  static_assert(api::kSchemaVersion == obs::kSchemaVersion);

  EXPECT_FALSE(api::find_workload("Zzz").ok());
  EXPECT_EQ(api::find_workload("Zzz").error().code,
            api::ErrorCode::kInvalidArgument);
  auto net = api::find_workload("Sqz");
  ASSERT_TRUE(net.ok());

  ExperimentConfig cfg = quick_config();
  auto res = api::run_experiment(cfg, net.value(),
                                 {PolicyKind::kBaseline, PolicyKind::kRwl});
  ASSERT_TRUE(res.ok()) << res.error().message;
  EXPECT_EQ(res.value().network_abbr, "Sqz");

  auto found = api::find_run(res.value(), PolicyKind::kRwl);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value().kind, PolicyKind::kRwl);
  auto absent = api::find_run(res.value(), PolicyKind::kRwlRo);
  ASSERT_FALSE(absent.ok());
  EXPECT_EQ(absent.error().code, api::ErrorCode::kNotFound);

  auto gain = api::lifetime_improvement(res.value(), PolicyKind::kRwl);
  ASSERT_TRUE(gain.ok());
  EXPECT_EQ(gain.value(),
            res.value().improvement_over_baseline(PolicyKind::kRwl));
  EXPECT_FALSE(api::lifetime_improvement(res.value(), PolicyKind::kRwlRo)
                   .ok());

  // Data errors that the historical surface throws for come back as
  // structured errors here.
  ExperimentConfig broken = quick_config();
  broken.iterations = -1;
  EXPECT_FALSE(api::run_experiment(broken, net.value(),
                                   {PolicyKind::kBaseline})
                   .ok());
  ExperimentConfig bad_geometry = quick_config();
  bad_geometry.accel.array_width = 0;
  auto sched_err = api::schedule_workload(bad_geometry, net.value());
  ASSERT_FALSE(sched_err.ok());
  EXPECT_EQ(sched_err.error().code, api::ErrorCode::kInvalidArgument);

  auto sched_ok = api::schedule_workload(cfg, net.value());
  ASSERT_TRUE(sched_ok.ok());
  EXPECT_EQ(sched_ok.value().network_abbr, "Sqz");
}

TEST(Experiment, ImprovementRequiresBaselineRun) {
  Experiment exp(quick_config());
  const auto res = exp.run(nn::make_squeezenet(), {PolicyKind::kRwlRo});
  EXPECT_THROW((void)res.improvement_over_baseline(PolicyKind::kRwlRo),
               precondition_error);
}

TEST(Experiment, WearLevelingImprovesLifetime) {
  Experiment exp(quick_config());
  const auto res = exp.run(
      nn::make_squeezenet(),
      {PolicyKind::kBaseline, PolicyKind::kRwl, PolicyKind::kRwlRo});
  const double rwl = res.improvement_over_baseline(PolicyKind::kRwl);
  const double ro = res.improvement_over_baseline(PolicyKind::kRwlRo);
  EXPECT_GT(rwl, 1.1);
  EXPECT_GT(ro, 1.1);
  EXPECT_GE(ro, rwl - 1e-6);  // RO never loses to per-layer RWL
  // Baseline against itself is exactly 1.
  EXPECT_NEAR(res.improvement_over_baseline(PolicyKind::kBaseline), 1.0,
              1e-12);
}

TEST(Experiment, UsageGridsShareTotalWork) {
  Experiment exp(quick_config(20));
  const auto res = exp.run(
      nn::make_squeezenet(),
      {PolicyKind::kBaseline, PolicyKind::kRwl, PolicyKind::kRwlRo});
  std::int64_t reference = -1;
  for (const auto& run : res.runs) {
    std::int64_t sum = 0;
    for (std::int64_t v : run.usage.cells()) sum += v;
    if (reference < 0) reference = sum;
    EXPECT_EQ(sum, reference) << run.policy_name;
  }
}

TEST(Experiment, RwlRoAchievesNearZeroRDiff) {
  Experiment exp(quick_config(200));
  const auto res =
      exp.run(nn::make_squeezenet(), {PolicyKind::kBaseline,
                                      PolicyKind::kRwlRo});
  const auto& ro = res.run(PolicyKind::kRwlRo);
  EXPECT_LT(ro.stats.r_diff, 0.01);  // paper: R_diff ≈ 0 (Fig. 7)
  const auto& base = res.run(PolicyKind::kBaseline);
  EXPECT_TRUE(std::isinf(base.stats.r_diff) || base.stats.r_diff > 1.0);
}

TEST(Experiment, TransientSamplesCoverEveryIteration) {
  Experiment exp(quick_config());
  const auto samples =
      exp.run_transient(nn::make_squeezenet(), PolicyKind::kRwlRo, 30);
  ASSERT_EQ(samples.size(), 30u);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].iteration, static_cast<std::int64_t>(i + 1));
    EXPECT_GE(samples[i].max_usage_diff, 0);
    EXPECT_GT(samples[i].improvement, 0.0);
  }
}

TEST(Experiment, TransientImprovementConvergesUpward) {
  // Fig. 7: projected lifetime rises as R_diff falls. The improvement in
  // the second half of the run must dominate the very first iteration.
  Experiment exp(quick_config());
  const auto samples =
      exp.run_transient(nn::make_squeezenet(), PolicyKind::kRwlRo, 100);
  const double early = samples.front().improvement;
  double late = 0.0;
  for (std::size_t i = 50; i < samples.size(); ++i)
    late = std::max(late, samples[i].improvement);
  EXPECT_GT(late, early);
  // R_diff trends to ~0.
  EXPECT_LT(samples.back().r_diff, samples.front().r_diff + 1e-12);
  EXPECT_LT(samples.back().r_diff, 0.05);
}

TEST(Experiment, BaselineTransientDiffGrowsLinearly) {
  Experiment exp(quick_config());
  const auto samples =
      exp.run_transient(nn::make_squeezenet(), PolicyKind::kBaseline, 20);
  // D_max after iteration k is exactly k × D_max after one iteration.
  const std::int64_t d1 = samples.front().max_usage_diff;
  for (const auto& s : samples) {
    EXPECT_EQ(s.max_usage_diff, d1 * s.iteration);
  }
}

TEST(Experiment, SchedulerMemoizedAcrossRuns) {
  Experiment exp(quick_config(5));
  exp.run(nn::make_squeezenet(), {PolicyKind::kBaseline});
  const std::size_t after_first = exp.mapper().cache_size();
  exp.run(nn::make_squeezenet(), {PolicyKind::kRwlRo});
  EXPECT_EQ(exp.mapper().cache_size(), after_first);
}

TEST(Experiment, RunMixConcatenatesNetworks) {
  Experiment exp(quick_config(10));
  const std::vector<nn::Network> mix = {nn::make_squeezenet(),
                                        nn::make_mobilenet_v3()};
  const auto res = exp.run_mix(mix, {PolicyKind::kBaseline,
                                     PolicyKind::kRwlRo});
  EXPECT_EQ(res.network_abbr, "Sqz+Mb");
  EXPECT_EQ(res.schedule.layers.size(),
            mix[0].layer_count() + mix[1].layer_count());
  // Layer names carry the owning network's abbreviation.
  EXPECT_EQ(res.schedule.layers.front().layer_name.rfind("Sqz:", 0), 0u);
  EXPECT_EQ(res.schedule.layers.back().layer_name.rfind("Mb:", 0), 0u);
  // The relayed policy still wins on the mix.
  EXPECT_GT(res.improvement_over_baseline(PolicyKind::kRwlRo), 1.1);
}

TEST(Experiment, RunMixMatchesManualInterleaving) {
  // run_mix's usage must equal manually running both schedules through
  // one policy instance.
  Experiment exp(quick_config(5));
  const std::vector<nn::Network> mix = {nn::make_squeezenet(),
                                        nn::make_efficientnet_b0()};
  const auto res = exp.run_mix(mix, {PolicyKind::kRwlRo});

  sched::Mapper mapper(exp.config().accel, sched::ObjectiveSpec{});
  wear::WearSimulator sim(exp.config().accel);
  auto policy = wear::make_policy(PolicyKind::kRwlRo, 14, 12);
  const auto s0 = mapper.schedule_network(mix[0]);
  const auto s1 = mapper.schedule_network(mix[1]);
  for (int it = 0; it < 5; ++it) {
    sim.run_iteration(s0, *policy);
    sim.run_iteration(s1, *policy);
  }
  EXPECT_TRUE(res.run(PolicyKind::kRwlRo).usage == sim.tracker().usage());
}

TEST(Experiment, RunMixRejectsEmptyMix) {
  Experiment exp(quick_config(1));
  EXPECT_THROW(exp.run_mix({}, {PolicyKind::kBaseline}),
               precondition_error);
}

TEST(Experiment, RejectsNegativeIterations) {
  ExperimentConfig cfg;
  cfg.iterations = -1;
  EXPECT_THROW(Experiment{cfg}, precondition_error);
}

TEST(Experiment, CustomBetaPropagates) {
  ExperimentConfig cfg = quick_config(20);
  cfg.beta = 2.0;
  Experiment exp(cfg);
  const auto res = exp.run(nn::make_squeezenet(),
                           {PolicyKind::kBaseline, PolicyKind::kRwlRo});
  EXPECT_DOUBLE_EQ(res.beta, 2.0);
  // A smaller shape parameter compresses the improvement (exponent 1/β−1
  // shrinks in magnitude... for β=2 vs 3.4 the bound util^{1/β−1} is
  // smaller), so the result must differ from the default-β run.
  Experiment exp34(quick_config(20));
  const auto res34 = exp34.run(nn::make_squeezenet(),
                               {PolicyKind::kBaseline, PolicyKind::kRwlRo});
  EXPECT_LT(res.improvement_over_baseline(PolicyKind::kRwlRo),
            res34.improvement_over_baseline(PolicyKind::kRwlRo));
}

TEST(ApiV1, ObjectiveScheduleDefaultsMatchTheHistoricalSurface) {
  namespace api = rota::api::v1;
  const auto net = api::find_workload("Sqz");
  ASSERT_TRUE(net.ok());
  const ExperimentConfig cfg = quick_config();
  const auto base = api::schedule_workload(cfg, net.value());
  ASSERT_TRUE(base.ok());
  const auto objective = api::schedule_network_with_objective(
      cfg, net.value(), sched::ObjectiveSpec{});
  ASSERT_TRUE(objective.ok()) << objective.error().message;
  ASSERT_EQ(objective.value().layers.size(), base.value().layers.size());
  for (std::size_t i = 0; i < base.value().layers.size(); ++i) {
    EXPECT_EQ(objective.value().layers[i].energy,
              base.value().layers[i].energy);
    EXPECT_EQ(objective.value().layers[i].cycles,
              base.value().layers[i].cycles);
    EXPECT_EQ(objective.value().layers[i].mapping,
              base.value().layers[i].mapping);
  }
  // Data errors come back as Results here too.
  ExperimentConfig bad = quick_config();
  bad.accel.array_width = 0;
  EXPECT_FALSE(api::schedule_network_with_objective(bad, net.value(),
                                                    sched::ObjectiveSpec{})
                   .ok());
}

TEST(ApiV1, ParetoNetworkSmoke) {
  namespace api = rota::api::v1;
  const auto net = api::find_workload("Sqz");
  ASSERT_TRUE(net.ok());
  const ExperimentConfig cfg = quick_config();
  const auto front =
      api::pareto_network(cfg, net.value(), sched::ObjectiveSpec::lifetime());
  ASSERT_TRUE(front.ok()) << front.error().message;
  EXPECT_EQ(front.value().objective, sched::ObjectiveSpec::lifetime());
  EXPECT_EQ(front.value().array_digest, "live");
  EXPECT_EQ(front.value().live_pes, cfg.accel.pe_count());
  ASSERT_EQ(front.value().layers.size(), net.value().layer_count());
  for (const auto& layer : front.value().layers) {
    ASSERT_FALSE(layer.points.empty()) << layer.layer_name;
    EXPECT_EQ(std::count_if(layer.points.begin(), layer.points.end(),
                            [](const sched::ParetoPoint& p) {
                              return p.selected;
                            }),
              1)
        << layer.layer_name;
  }
  ExperimentConfig bad = quick_config();
  bad.accel.array_height = 0;
  EXPECT_FALSE(
      api::pareto_network(bad, net.value(), sched::ObjectiveSpec{}).ok());
}

}  // namespace
}  // namespace rota
