/// \file thread_safety_violation.cpp
/// Deliberately mis-locked code. This TU must NOT compile under the
/// `thread-safety` preset (-Wthread-safety -Werror): the CTest entry
/// ThreadSafety.MislockedFixtureRejected builds it with WILL_FAIL, so CI
/// proves the capability analysis is actually armed — a toolchain or
/// macro regression that silently disables the analysis turns this
/// always-failing build into a passing one and fails the suite.
///
/// Under other compilers the annotations expand to nothing and this file
/// compiles fine; the test is only registered when ROTA_THREAD_SAFETY=ON.

#include <cstdint>

#include "util/thread_annotations.hpp"

namespace {

class Counter {
 public:
  // BUG (deliberate): touches `value_` without holding `mu_`.
  void increment_unlocked() { ++value_; }

  // BUG (deliberate): claims the caller holds `mu_`, then unlocks a
  // mutex it never acquired.
  void double_release() {
    mu_.unlock();
    mu_.unlock();
  }

  std::int64_t read() const {
    const rota::util::MutexLock lock(mu_);
    return value_;
  }

 private:
  mutable rota::util::Mutex mu_;
  std::int64_t value_ ROTA_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.increment_unlocked();
  if (counter.read() < 0) counter.double_release();  // never taken
  return static_cast<int>(counter.read());
}
