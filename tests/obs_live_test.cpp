#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "obs/event_log.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/snapshot.hpp"
#include "util/check.hpp"
#include "util/io.hpp"

/// Live-telemetry tests: metrics snapshots (JSON + OpenMetrics twins,
/// publisher thread, crash-safe writes under injected faults) and the
/// structured EventLog (ring, JSON lines, rotation, progress heartbeat).

namespace rota::obs {
namespace {

struct TempDir {
  std::filesystem::path path;

  TempDir() {
    static std::atomic<int> counter{0};
    path = std::filesystem::temp_directory_path() /
           ("rota_obs_live_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

/// The global EventLog bleeds across tests unless restored.
struct EventLogGuard {
  EventLogGuard() {
    EventLog::global().reset();
    EventLog::global().set_enabled(true);
  }
  ~EventLogGuard() {
    EventLog::global().set_echo_stderr(false);
    EventLog::global().reset();
    EventLog::global().set_enabled(false);
  }
};

struct IoHookGuard {
  ~IoHookGuard() { util::set_io_fault_hook({}); }
};

// ------------------------------------------------------------- histograms

TEST(MetricsExport, HistogramSummaryIncludesP99) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  for (int i = 1; i <= 100; ++i) reg.observe("lat", static_cast<double>(i));
  const MetricsExport ex = reg.export_all();
  const auto it = ex.histograms.find("lat");
  ASSERT_NE(it, ex.histograms.end());
  EXPECT_EQ(it->second.count, 100);
  EXPECT_DOUBLE_EQ(it->second.p50, 50.0);
  EXPECT_DOUBLE_EQ(it->second.p95, 95.0);
  EXPECT_DOUBLE_EQ(it->second.p99, 99.0);
  EXPECT_NE(reg.json().find("\"p99\":"), std::string::npos);
}

// -------------------------------------------------------------- snapshots

TEST(Snapshot, JsonEnvelopeCarriesSchemaVersionAndSeq) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  reg.add("fi.injected_faults", 7);
  const MetricsSnapshot snap = capture_snapshot(reg, 42);
  const std::string json = snapshot_json(snap);
  EXPECT_NE(json.find("\"schema_version\":" + std::to_string(kSchemaVersion)),
            std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"metrics_snapshot\""), std::string::npos);
  EXPECT_NE(json.find("\"seq\":42"), std::string::npos);
  EXPECT_NE(json.find("\"uptime_seconds\":"), std::string::npos);
  EXPECT_NE(json.find("\"fi.injected_faults\":{\"type\":\"counter\","
                      "\"value\":7}"),
            std::string::npos);
}

TEST(Snapshot, OpenMetricsNameManglesToCharset) {
  EXPECT_EQ(openmetrics_name("svc.queue_wait_ms"), "rota_svc_queue_wait_ms");
  EXPECT_EQ(openmetrics_name("cache.l1-hit"), "rota_cache_l1_hit");
  EXPECT_EQ(openmetrics_name("plain"), "rota_plain");
}

TEST(Snapshot, OpenMetricsRenderingAgreesWithJsonTwin) {
  MetricsRegistry reg;
  reg.set_enabled(true);
  reg.add("svc.requests_shed", 3);
  reg.gauge("svc.queue_depth", 5.0);
  for (int i = 1; i <= 4; ++i) reg.observe("svc.compute_ms", i * 1.5);
  const MetricsSnapshot snap = capture_snapshot(reg, 9);
  const std::string om = snapshot_openmetrics(snap);

  EXPECT_NE(om.find("# TYPE rota_snapshot_schema_version gauge\n"
                    "rota_snapshot_schema_version " +
                    std::to_string(kSchemaVersion) + "\n"),
            std::string::npos);
  EXPECT_NE(om.find("rota_snapshot_seq 9\n"), std::string::npos);
  EXPECT_NE(om.find("# TYPE rota_svc_requests_shed counter\n"
                    "rota_svc_requests_shed_total 3\n"),
            std::string::npos);
  EXPECT_NE(om.find("# TYPE rota_svc_queue_depth gauge\n"
                    "rota_svc_queue_depth 5\n"),
            std::string::npos);
  EXPECT_NE(om.find("# TYPE rota_svc_compute_ms summary\n"),
            std::string::npos);
  EXPECT_NE(om.find("rota_svc_compute_ms{quantile=\"0.99\"} "),
            std::string::npos);
  EXPECT_NE(om.find("rota_svc_compute_ms_count 4\n"), std::string::npos);
  // Spec: the exposition ends with exactly one EOF marker.
  ASSERT_GE(om.size(), 6u);
  EXPECT_EQ(om.substr(om.size() - 6), "# EOF\n");
  EXPECT_EQ(om.find("# EOF"), om.size() - 6);
}

// -------------------------------------------------------------- publisher

TEST(SnapshotPublisher, ExitOnlyModePublishesFinalSnapshotOnStop) {
  TempDir dir;
  MetricsRegistry reg;
  reg.set_enabled(true);
  reg.add("work.done", 1);
  SnapshotPublisher::Options opt;
  opt.json_path = dir.file("stats.json");
  opt.openmetrics_path = dir.file("stats.om");
  SnapshotPublisher pub(opt, reg);
  // start() never called: stop() must still leave the exit state on disk.
  pub.stop();
  EXPECT_EQ(pub.published(), 1u);
  EXPECT_TRUE(std::filesystem::exists(opt.json_path));
  EXPECT_TRUE(std::filesystem::exists(opt.openmetrics_path));
  // Idempotent: a second stop (and the destructor) publishes nothing new.
  pub.stop();
  EXPECT_EQ(pub.published(), 1u);
  const std::string json = util::read_text_file(opt.json_path);
  EXPECT_NE(json.find("\"work.done\""), std::string::npos);
}

TEST(SnapshotPublisher, SamplerThreadPublishesPeriodicallyAndJoins) {
  TempDir dir;
  MetricsRegistry reg;
  reg.set_enabled(true);
  SnapshotPublisher::Options opt;
  opt.json_path = dir.file("stats.json");
  opt.openmetrics_path = dir.file("stats.om");
  opt.interval = std::chrono::milliseconds(5);
  SnapshotPublisher pub(opt, reg);
  pub.start();
  // Generous bound: wait until at least two periodic publishes landed.
  for (int i = 0; i < 400 && pub.published() < 2; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  pub.stop();
  const std::uint64_t total = pub.published();
  EXPECT_GE(total, 3u);  // >= 2 periodic + 1 final
  // Snapshot seqs are monotonic; the last file on disk is the final one.
  const std::string json = util::read_text_file(opt.json_path);
  EXPECT_NE(json.find("\"seq\":" + std::to_string(total)),
            std::string::npos);
  // Joined: no further publishes after stop.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(pub.published(), total);
}

TEST(SnapshotPublisher, RetriesTransientWriteFaults) {
  TempDir dir;
  IoHookGuard hook_guard;
  MetricsRegistry reg;
  reg.set_enabled(true);
  reg.add("work.done", 5);
  std::atomic<int> faults_left{2};
  util::set_io_fault_hook(
      [&](util::IoOp op, const std::string& path, std::string*) {
        if (op != util::IoOp::kWrite) return;
        if (path.find("stats") == std::string::npos) return;
        if (faults_left.fetch_sub(1) > 0)
          throw util::io_error("injected write fault: " + path);
        faults_left.store(0);
      });
  SnapshotPublisher::Options opt;
  opt.json_path = dir.file("stats.json");
  opt.openmetrics_path = dir.file("stats.om");
  opt.retry.max_attempts = 5;
  opt.retry.base_delay_ms = 0;
  SnapshotPublisher pub(opt, reg);
  EXPECT_TRUE(pub.publish_now());
  EXPECT_EQ(pub.failed(), 0u);
  // The faults were absorbed by retry_io and counted in the registry.
  const MetricsExport ex = reg.export_all();
  const auto retries = ex.counters.find("obs.snapshot.retries");
  ASSERT_NE(retries, ex.counters.end());
  EXPECT_GE(retries->second, 2);
  // The committed file is complete despite the faulted attempts.
  const std::string json = util::read_text_file(opt.json_path);
  EXPECT_NE(json.find("\"work.done\":{\"type\":\"counter\",\"value\":5}"),
            std::string::npos);
}

TEST(SnapshotPublisher, ExhaustedRetriesCountAsFailureNotThrow) {
  TempDir dir;
  IoHookGuard hook_guard;
  EventLogGuard events;
  MetricsRegistry reg;
  reg.set_enabled(true);
  util::set_io_fault_hook(
      [&](util::IoOp op, const std::string& path, std::string*) {
        if (op == util::IoOp::kWrite &&
            path.find("stats") != std::string::npos)
          throw util::io_error("injected write fault: " + path);
      });
  SnapshotPublisher::Options opt;
  opt.json_path = dir.file("stats.json");
  opt.openmetrics_path = dir.file("stats.om");
  opt.retry.max_attempts = 2;
  opt.retry.base_delay_ms = 0;
  SnapshotPublisher pub(opt, reg);
  EXPECT_FALSE(pub.publish_now());
  EXPECT_EQ(pub.failed(), 1u);
  EXPECT_EQ(pub.published(), 0u);
  // The failure is observable: a counter and a warn event, no exception.
  const MetricsExport ex = reg.export_all();
  const auto failures = ex.counters.find("obs.snapshot.failures");
  ASSERT_NE(failures, ex.counters.end());
  EXPECT_EQ(failures->second, 1);
  bool warned = false;
  for (const Event& ev : EventLog::global().recent())
    if (ev.severity == Severity::kWarn && ev.component == "obs" &&
        ev.message.find("snapshot publish failed") != std::string::npos)
      warned = true;
  EXPECT_TRUE(warned);
}

// -------------------------------------------------------------- event log

TEST(EventLogTest, RingKeepsEventsInOrderWithMonotonicSeq) {
  EventLogGuard guard;
  log_event(Severity::kInfo, "svc", "request shed", 17, "client-3");
  log_event(Severity::kWarn, "fi", "fault injected");
  const std::vector<Event> events = EventLog::global().recent();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq + 1, events[1].seq);
  EXPECT_EQ(events[0].component, "svc");
  EXPECT_EQ(events[0].request_seq, 17u);
  EXPECT_EQ(events[0].request_id, "client-3");
  EXPECT_EQ(events[1].severity, Severity::kWarn);
  EXPECT_EQ(events[1].request_seq, 0u);
}

TEST(EventLogTest, JsonLineShape) {
  Event ev;
  ev.seq = 5;
  ev.t_s = 0.25;
  ev.severity = Severity::kWarn;
  ev.component = "svc";
  ev.message = "queue \"full\"";
  const std::string bare = to_json_line(ev);
  EXPECT_EQ(bare.find("{\"schema_version\":"), 0u);
  EXPECT_NE(bare.find("\"seq\":5"), std::string::npos);
  EXPECT_NE(bare.find("\"severity\":\"warn\""), std::string::npos);
  EXPECT_NE(bare.find("\"message\":\"queue \\\"full\\\"\""),
            std::string::npos);
  // Request tags appear only when scoped.
  EXPECT_EQ(bare.find("request_seq"), std::string::npos);
  ev.request_seq = 9;
  ev.request_id = "abc";
  const std::string scoped = to_json_line(ev);
  EXPECT_NE(scoped.find("\"request_seq\":9"), std::string::npos);
  EXPECT_NE(scoped.find("\"request_id\":\"abc\""), std::string::npos);
}

TEST(EventLogTest, FileSinkRotatesAtSizeThreshold) {
  TempDir dir;
  EventLogGuard guard;
  const std::string path = dir.file("events.jsonl");
  EventLog::global().set_sink(path, /*rotate_bytes=*/512);
  for (int i = 0; i < 32; ++i)
    log_event(Severity::kInfo, "cli",
              "padding message to force a rotation " + std::to_string(i));
  EXPECT_GE(EventLog::global().rotations(), 1u);
  EXPECT_EQ(EventLog::global().sink_errors(), 0u);
  ASSERT_TRUE(std::filesystem::exists(path));
  ASSERT_TRUE(std::filesystem::exists(path + ".1"));
  // Every line in both generations is one JSON object.
  for (const std::string& p : {path, path + ".1"}) {
    const std::string text = util::read_text_file(p);
    ASSERT_FALSE(text.empty());
    std::size_t start = 0;
    while (start < text.size()) {
      std::size_t end = text.find('\n', start);
      ASSERT_NE(end, std::string::npos) << "unterminated line in " << p;
      const std::string line = text.substr(start, end - start);
      EXPECT_EQ(line.front(), '{');
      EXPECT_EQ(line.back(), '}');
      start = end + 1;
    }
  }
}

TEST(EventLogTest, DisabledLogIsANoop) {
  EventLog::global().set_enabled(false);
  const std::uint64_t before = EventLog::global().total_logged();
  log_event(Severity::kError, "svc", "must not be recorded");
  EXPECT_EQ(EventLog::global().total_logged(), before);
}

// -------------------------------------------------------------- heartbeat

TEST(ProgressHeartbeat, LogsEtaAndCheckpointAgeThroughEventLog) {
  if (::isatty(STDERR_FILENO) != 0)
    GTEST_SKIP() << "heartbeat mode requires a non-TTY stderr";
  EventLogGuard guard;
  ProgressReporter::set_heartbeat_interval_ms(1);
  {
    ProgressReporter progress("hb-test", 100);
    for (int i = 0; i < 10; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      progress.note_checkpoint();
      progress.tick(10);
    }
    progress.finish();
  }
  ProgressReporter::set_heartbeat_interval_ms(5000);
  bool saw_progress = false;
  bool saw_checkpoint_age = false;
  bool saw_done = false;
  for (const Event& ev : EventLog::global().recent()) {
    if (ev.component != "obs") continue;
    if (ev.message.find("hb-test") == std::string::npos) continue;
    saw_progress = true;
    if (ev.message.find("last checkpoint") != std::string::npos)
      saw_checkpoint_age = true;
    if (ev.message.find("done") != std::string::npos) saw_done = true;
  }
  EXPECT_TRUE(saw_progress);
  EXPECT_TRUE(saw_checkpoint_age);
  EXPECT_TRUE(saw_done);
}

}  // namespace
}  // namespace rota::obs
