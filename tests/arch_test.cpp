#include <gtest/gtest.h>

#include "arch/area.hpp"
#include "arch/config.hpp"
#include "arch/energy.hpp"
#include "arch/topology.hpp"
#include "util/check.hpp"

namespace rota::arch {
namespace {

using util::precondition_error;

// --------------------------------------------------------------- config ----

TEST(Config, EyerissDefaultsMatchPaperSectionV) {
  const AcceleratorConfig cfg = eyeriss_like();
  EXPECT_EQ(cfg.array_width, 14);
  EXPECT_EQ(cfg.array_height, 12);
  EXPECT_EQ(cfg.pe_count(), 168);
  EXPECT_EQ(cfg.lb_input_bytes, 24);
  EXPECT_EQ(cfg.lb_weight_bytes, 448);
  EXPECT_EQ(cfg.lb_output_bytes, 48);
  EXPECT_EQ(cfg.glb_bytes, 108 * 1024);
  EXPECT_EQ(cfg.topology, TopologyKind::kMesh2D);
}

TEST(Config, RotaUsesTorus) {
  EXPECT_EQ(rota_like().topology, TopologyKind::kTorus2D);
}

TEST(Config, WordDerivedCapacities) {
  const AcceleratorConfig cfg = eyeriss_like();
  EXPECT_EQ(cfg.lb_input_words(), 12);
  EXPECT_EQ(cfg.lb_weight_words(), 224);
  EXPECT_EQ(cfg.lb_output_words(), 24);
  EXPECT_EQ(cfg.glb_words(), 108 * 1024 / 2);
}

TEST(Config, ValidationRejectsDegenerateConfigs) {
  AcceleratorConfig cfg = eyeriss_like();
  cfg.array_width = 0;
  EXPECT_THROW(cfg.validate(), precondition_error);

  cfg = eyeriss_like();
  cfg.glb_bytes = 8;  // smaller than one PE's local buffers
  EXPECT_THROW(cfg.validate(), precondition_error);

  cfg = eyeriss_like();
  cfg.global_net_words_per_cycle = 0;
  EXPECT_THROW(cfg.validate(), precondition_error);
}

TEST(Config, ScaledArray) {
  const AcceleratorConfig cfg = scaled_array(32, TopologyKind::kTorus2D);
  EXPECT_EQ(cfg.array_width, 32);
  EXPECT_EQ(cfg.array_height, 32);
  EXPECT_EQ(cfg.pe_count(), 1024);
}

// --------------------------------------------------------------- energy ----

TEST(Energy, TotalIsWeightedSum) {
  EnergyModel em;
  AccessCounts c;
  c.macs = 10;
  c.lb_accesses = 30;
  c.inter_pe_hops = 5;
  c.glb_accesses = 2;
  c.dram_accesses = 1;
  const double expected = 10 * em.mac + 30 * em.lb_access +
                          5 * em.inter_pe_hop + 2 * em.glb_access +
                          1 * em.dram_access;
  EXPECT_DOUBLE_EQ(total_energy(em, c), expected);
}

TEST(Energy, EyerissStyleCostOrdering) {
  const EnergyModel em;
  EXPECT_LT(em.mac, em.inter_pe_hop);
  EXPECT_LT(em.inter_pe_hop, em.glb_access);
  EXPECT_LT(em.glb_access, em.dram_access);
  EXPECT_NEAR(em.dram_access / em.mac, 200.0, 1e-9);
}

TEST(Energy, AccumulateCounts) {
  AccessCounts a;
  a.macs = 1;
  a.glb_accesses = 2;
  AccessCounts b;
  b.macs = 10;
  b.dram_accesses = 3;
  a += b;
  EXPECT_EQ(a.macs, 11);
  EXPECT_EQ(a.glb_accesses, 2);
  EXPECT_EQ(a.dram_accesses, 3);
}

// ------------------------------------------------------------- topology ----

TEST(Topology, MeshLinkCount) {
  const Topology mesh(TopologyKind::kMesh2D, 14, 12);
  const LinkStats s = mesh.link_stats();
  EXPECT_EQ(s.link_count, 13 * 12 + 14 * 11);  // 310
  EXPECT_DOUBLE_EQ(s.max_length_pitches, 1.0);
  EXPECT_FALSE(mesh.allows_wraparound());
  EXPECT_EQ(mesh.extra_links_vs_mesh(), 0);
}

TEST(Topology, TorusRingLinkCount) {
  const Topology torus(TopologyKind::kTorus2D, 14, 12);
  const LinkStats s = torus.link_stats();
  EXPECT_EQ(s.link_count, 14 * 12 * 2);  // one ring link per PE per axis
  EXPECT_TRUE(torus.allows_wraparound());
  EXPECT_EQ(torus.extra_links_vs_mesh(), 14 + 12);
}

TEST(Topology, FoldedTorusBoundsLinkLength) {
  for (std::int64_t side : {4, 8, 14, 32, 64}) {
    const Topology torus(TopologyKind::kTorus2D, side, side,
                         TorusLayout::kFolded);
    EXPECT_LE(torus.link_stats().max_length_pitches, 2.0) << side;
  }
}

TEST(Topology, NaiveTorusHasLongLoopback) {
  const Topology torus(TopologyKind::kTorus2D, 14, 12,
                       TorusLayout::kNaiveLoopback);
  EXPECT_DOUBLE_EQ(torus.link_stats().max_length_pitches, 13.0);
}

TEST(Topology, FoldedShorterThanNaiveTotalForLargeArrays) {
  const Topology folded(TopologyKind::kTorus2D, 32, 32, TorusLayout::kFolded);
  const Topology naive(TopologyKind::kTorus2D, 32, 32,
                       TorusLayout::kNaiveLoopback);
  EXPECT_LT(folded.link_stats().max_length_pitches,
            naive.link_stats().max_length_pitches);
}

// ----------------------------------------------------------------- area ----

TEST(Area, BreakdownComponentsArePositive) {
  const AreaModel model;
  const AreaBreakdown bd = model.breakdown(eyeriss_like());
  EXPECT_GT(bd.pe_array, 0.0);
  EXPECT_GT(bd.glb, 0.0);
  EXPECT_GT(bd.controller, 0.0);
  EXPECT_GT(bd.global_network, 0.0);
  EXPECT_GT(bd.local_network, 0.0);
  EXPECT_NEAR(bd.total(), bd.pe_array + bd.glb + bd.controller +
                              bd.global_network + bd.local_network,
              1e-9);
}

TEST(Area, BuffersDominatePeArea) {
  // The paper's overhead argument rests on buffers+logic dominating the
  // array area; the local network must be a small fraction.
  const AreaModel model;
  const AreaBreakdown bd = model.breakdown(eyeriss_like());
  EXPECT_LT(bd.local_network, 0.1 * bd.pe_array);
}

TEST(Area, TorusArrayOverheadNearPaperValue) {
  // §V-D: "only 0.3% design overhead compared to the conventional 2-D mesh
  // PE array". Accept [0.1%, 0.6%] for the analytical model.
  const AreaModel model;
  const double overhead = model.array_overhead_fraction(eyeriss_like());
  EXPECT_GT(overhead, 0.001);
  EXPECT_LT(overhead, 0.006);
}

TEST(Area, ChipOverheadSmallerThanArrayOverhead) {
  const AreaModel model;
  const double array = model.array_overhead_fraction(eyeriss_like());
  const double chip = model.chip_overhead_fraction(eyeriss_like());
  EXPECT_GT(chip, 0.0);
  EXPECT_LT(chip, array);
}

TEST(Area, WearLevelingLogicIsTiny) {
  const AreaModel model;
  const AreaBreakdown with = model.breakdown(rota_like(), true);
  const AreaBreakdown without = model.breakdown(rota_like(), false);
  const double delta = with.total() - without.total();
  EXPECT_GT(delta, 0.0);
  EXPECT_LT(delta / without.total(), 0.001);
}

TEST(Area, OverheadRequiresMeshBaseline) {
  const AreaModel model;
  EXPECT_THROW((void)model.array_overhead_fraction(rota_like()),
               precondition_error);
}

TEST(Area, OverheadShrinksWithArraySize) {
  // Larger arrays amortize ring links over more PEs per link? Each PE adds
  // 2 ring links, so the *fraction* stays roughly constant; verify it stays
  // within the same band across sizes rather than exploding.
  const AreaModel model;
  const double at8 =
      model.array_overhead_fraction(scaled_array(8, TopologyKind::kMesh2D));
  const double at32 =
      model.array_overhead_fraction(scaled_array(32, TopologyKind::kMesh2D));
  EXPECT_GT(at8, 0.0);
  EXPECT_GT(at32, 0.0);
  EXPECT_LT(at8, 0.01);
  EXPECT_LT(at32, 0.01);
}

}  // namespace
}  // namespace rota::arch
