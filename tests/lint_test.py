#!/usr/bin/env python3
"""Behavioral tests for tools/rota_lint.py.

Each case materializes a miniature repo tree (a `src/` directory under a
temp dir) and runs the real linter against it with --root, so the rules
are exercised end to end — file discovery, comment stripping, the rule
itself, and the `// rota-lint: allow(<rule>)` escape — without planting
violation fixtures where the repository's own lint run would find them
(tests/ is on the linter's scan list).

Run directly (`python3 tests/lint_test.py`) or via CTest (LintRules.*).
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import unittest
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
LINTER = REPO_ROOT / "tools" / "rota_lint.py"


def run_lint(root: Path, *extra: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(LINTER), "--root", str(root), *extra],
        capture_output=True, text=True, check=False)


class LintCase(unittest.TestCase):
    def setUp(self) -> None:
        self._tmp = tempfile.TemporaryDirectory()
        self.root = Path(self._tmp.name)
        (self.root / "src").mkdir()

    def tearDown(self) -> None:
        self._tmp.cleanup()

    def write(self, rel: str, text: str) -> Path:
        path = self.root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        return path

    def assert_clean(self, *extra: str) -> None:
        proc = run_lint(self.root, *extra)
        self.assertEqual(proc.returncode, 0,
                         f"expected clean, got:\n{proc.stdout}{proc.stderr}")

    def assert_fires(self, rule: str, *extra: str,
                     count: int | None = None) -> str:
        proc = run_lint(self.root, *extra)
        self.assertEqual(proc.returncode, 1,
                         f"expected failures, got rc={proc.returncode}:\n"
                         f"{proc.stdout}{proc.stderr}")
        self.assertIn(f"[{rule}]", proc.stdout)
        if count is not None:
            self.assertEqual(proc.stdout.count(f"[{rule}]"), count,
                             proc.stdout)
        return proc.stdout


class DeterminismRule(LintCase):
    def test_wall_clock_fires(self) -> None:
        self.write("src/a.cpp",
                   "#include <ctime>\n"
                   "long stamp() { return std::time(nullptr); }\n")
        out = self.assert_fires("determinism", count=1)
        self.assertIn("wall-clock", out)

    def test_system_clock_fires(self) -> None:
        self.write("src/a.cpp",
                   "auto t() { return std::chrono::system_clock::now(); }\n")
        self.assert_fires("determinism", count=1)

    def test_steady_clock_is_fine(self) -> None:
        self.write("src/a.cpp",
                   "auto t() { return std::chrono::steady_clock::now(); }\n")
        self.assert_clean()

    def test_manifest_is_whitelisted(self) -> None:
        self.write("src/obs/manifest.cpp",
                   "#include <ctime>\n"
                   "long stamp() { return std::time(nullptr); }\n")
        self.assert_clean()

    def test_allow_escape(self) -> None:
        self.write(
            "src/a.cpp",
            "#include <ctime>\n"
            "long stamp() {\n"
            "  return std::time(nullptr);  // rota-lint: allow(determinism)\n"
            "}\n")
        self.assert_clean()

    def test_unordered_iteration_fires(self) -> None:
        self.write("src/a.cpp",
                   "#include <unordered_map>\n"
                   "#include <string>\n"
                   "int f(const std::unordered_map<std::string, int>& m) {\n"
                   "  int sum = 0;\n"
                   "  for (const auto& kv : m) sum += kv.second;\n"
                   "  return sum;\n"
                   "}\n")
        out = self.assert_fires("determinism", count=1)
        self.assertIn("unordered", out)

    def test_unordered_member_iteration_fires(self) -> None:
        self.write("src/a.hpp",
                   "#pragma once\n"
                   "#include <unordered_set>\n"
                   "struct S {\n"
                   "  std::unordered_set<int> seen;\n"
                   "  int sum() const {\n"
                   "    int s = 0;\n"
                   "    for (int v : seen) s += v;\n"
                   "    return s;\n"
                   "  }\n"
                   "};\n")
        self.assert_fires("determinism", count=1)

    def test_vector_iteration_is_fine(self) -> None:
        self.write("src/a.cpp",
                   "#include <vector>\n"
                   "int f(const std::vector<int>& v) {\n"
                   "  int s = 0;\n"
                   "  for (int x : v) s += x;\n"
                   "  return s;\n"
                   "}\n")
        self.assert_clean()

    def test_pointer_keyed_map_fires(self) -> None:
        self.write("src/a.cpp",
                   "#include <map>\n"
                   "struct Node {};\n"
                   "std::map<Node*, int> g_order;\n")
        out = self.assert_fires("determinism", count=1)
        self.assertIn("address", out)

    def test_uintptr_keyed_set_fires(self) -> None:
        self.write("src/a.cpp",
                   "#include <cstdint>\n"
                   "#include <set>\n"
                   "std::set<std::uintptr_t> g_seen;\n")
        self.assert_fires("determinism", count=1)

    def test_string_keyed_map_is_fine(self) -> None:
        self.write("src/a.cpp",
                   "#include <map>\n"
                   "#include <string>\n"
                   "std::map<std::string, int> g_named;\n")
        self.assert_clean()


class SignalSafetyRule(LintCase):
    HANDLER_TMPL = ("#include <csignal>\n"
                    "#include <cstdio>\n"
                    "#include <atomic>\n"
                    "#include <unistd.h>\n"
                    "std::atomic<bool> g_flag{{false}};\n"
                    "extern \"C\" void on_signal(int) {{\n"
                    "{body}"
                    "}}\n"
                    "void install() {{\n"
                    "  struct sigaction sa {{}};\n"
                    "  sa.sa_handler = &on_signal;\n"
                    "  sigaction(SIGINT, &sa, nullptr);\n"
                    "}}\n")

    def test_printf_in_handler_fires(self) -> None:
        body = "  printf(\"caught\\n\");  // rota-lint: allow(log-discipline)\n"
        self.write("src/cli/main.cpp", self.HANDLER_TMPL.format(body=body))
        out = self.assert_fires("signal-safety", count=1)
        self.assertIn("printf", out)
        self.assertIn("on_signal", out)

    def test_atomics_and_exit_are_fine(self) -> None:
        body = ("  if (g_flag.exchange(true)) {\n"
                "    _exit(130);\n"
                "  }\n")
        self.write("src/cli/main.cpp", self.HANDLER_TMPL.format(body=body))
        self.assert_clean()

    def test_signal_registration_form(self) -> None:
        self.write("src/cli/main.cpp",
                   "#include <csignal>\n"
                   "#include <cstdlib>\n"
                   "extern \"C\" void on_signal(int) {\n"
                   "  std::malloc(8);\n"
                   "}\n"
                   "void install() { std::signal(SIGTERM, on_signal); }\n")
        out = self.assert_fires("signal-safety", count=1)
        self.assertIn("malloc", out)

    def test_allow_escape(self) -> None:
        body = ("  puts(\"bye\");  "
                "// rota-lint: allow(signal-safety)\n")
        self.write("src/cli/main.cpp", self.HANDLER_TMPL.format(
            body=body).replace("#include <cstdio>\n",
                               "#include <cstdio>  "
                               "// rota-lint: allow(log-discipline)\n"))
        # puts is also a log-discipline hit; keep the fixture at
        # src/cli/main.cpp (log-allowed) so only signal-safety is in play.
        self.assert_clean()

    def test_unregistered_function_not_checked(self) -> None:
        self.write("src/a.cpp",
                   "#include <cstdlib>\n"
                   "void not_a_handler(int) { std::malloc(8); }\n")
        self.assert_clean()


class ApiNoexceptRule(LintCase):
    def test_missing_noexcept_fires(self) -> None:
        self.write("src/core/api.hpp",
                   "#pragma once\n"
                   "#include <string>\n"
                   "namespace rota::api::v1 {\n"
                   "template <typename T> struct Result {};\n"
                   "[[nodiscard]] Result<int> parse(const std::string& s);\n"
                   "}  // namespace rota::api::v1\n")
        out = self.assert_fires("api-noexcept", count=1)
        self.assertIn("parse", out)

    def test_noexcept_is_fine(self) -> None:
        self.write("src/core/api.hpp",
                   "#pragma once\n"
                   "#include <string>\n"
                   "namespace rota::api::v1 {\n"
                   "template <typename T> struct Result {};\n"
                   "[[nodiscard]] Result<int> parse(\n"
                   "    const std::string& s) noexcept;\n"
                   "}  // namespace rota::api::v1\n")
        self.assert_clean()

    def test_using_alias_ignored(self) -> None:
        self.write("src/core/api.hpp",
                   "#pragma once\n"
                   "namespace rota::util {\n"
                   "template <typename T> struct Result {};\n"
                   "}\n"
                   "namespace rota::api::v1 {\n"
                   "using rota::util::Result;\n"
                   "using IntResult = Result<int>;\n"
                   "}  // namespace rota::api::v1\n")
        self.assert_clean()

    def test_non_api_header_ignored(self) -> None:
        self.write("src/sched/helper.hpp",
                   "#pragma once\n"
                   "namespace rota::sched {\n"
                   "template <typename T> struct Result {};\n"
                   "Result<int> helper();\n"
                   "}  // namespace rota::sched\n")
        self.assert_clean()

    def test_allow_escape(self) -> None:
        self.write(
            "src/core/api.hpp",
            "#pragma once\n"
            "namespace rota::api::v1 {\n"
            "template <typename T> struct Result {};\n"
            "Result<int> legacy();  // rota-lint: allow(api-noexcept)\n"
            "}  // namespace rota::api::v1\n")
        self.assert_clean()


class SimdIsolationRule(LintCase):
    def test_immintrin_outside_kern_fires(self) -> None:
        self.write("src/wear/fast.cpp",
                   "#include <immintrin.h>\n"
                   "void f() {}\n")
        out = self.assert_fires("simd-isolation", count=1)
        self.assertIn("src/kern", out)

    def test_x86intrin_fires(self) -> None:
        self.write("src/rel/mc.cpp", '#include "x86intrin.h"\nvoid f();\n')
        self.assert_fires("simd-isolation", count=1)

    def test_arm_neon_fires(self) -> None:
        self.write("src/util/simd.hpp",
                   "#pragma once\n#include <arm_neon.h>\n")
        self.assert_fires("simd-isolation", count=1)

    def test_kern_directory_is_exempt(self) -> None:
        self.write("src/kern/isa_avx2.cpp",
                   "#include <immintrin.h>\nvoid f() {}\n")
        self.assert_clean()

    def test_commented_include_is_fine(self) -> None:
        self.write("src/wear/doc.cpp",
                   "// #include <immintrin.h> is forbidden here\n"
                   "void f() {}\n")
        self.assert_clean()

    def test_allow_escape(self) -> None:
        self.write("src/obs/probe.cpp",
                   "#include <immintrin.h>  "
                   "// rota-lint: allow(simd-isolation)\n"
                   "void f() {}\n")
        self.assert_clean()


class MapperObjectiveRule(LintCase):
    def test_objectiveless_construction_fires(self) -> None:
        self.write("src/core/run.cpp",
                   "#include \"sched/mapper.hpp\"\n"
                   "void f() {\n"
                   "  sched::Mapper mapper(arch::rota_like());\n"
                   "  (void)mapper;\n"
                   "}\n")
        out = self.assert_fires("mapper-objective", count=1)
        self.assertIn("ObjectiveSpec", out)

    def test_objectiveless_with_options_fires(self) -> None:
        self.write("src/core/run.cpp",
                   "void f() {\n"
                   "  sched::Mapper mapper(cfg, {},\n"
                   "                       sched::MapperOptions{true, 1});\n"
                   "}\n")
        self.assert_fires("mapper-objective", count=1)

    def test_objective_construction_is_fine(self) -> None:
        self.write("src/core/run.cpp",
                   "void f() {\n"
                   "  sched::Mapper mapper(cfg, sched::ObjectiveSpec{}, {},\n"
                   "                       sched::MapperOptions{true, 1});\n"
                   "}\n")
        self.assert_clean()

    def test_member_initializer_fires(self) -> None:
        self.write("src/core/run.cpp",
                   "Experiment::Experiment(Config c)\n"
                   "    : mapper_(c.accel, {}, sched::MapperOptions{}) {}\n")
        self.assert_fires("mapper-objective", count=1)

    def test_member_initializer_with_objective_is_fine(self) -> None:
        self.write("src/core/run.cpp",
                   "Experiment::Experiment(Config c)\n"
                   "    : mapper_(c.accel, sched::ObjectiveSpec{},\n"
                   "              {}, sched::MapperOptions{}) {}\n")
        self.assert_clean()

    def test_rs_mapper_is_not_matched(self) -> None:
        self.write("src/sched/rs.cpp",
                   "void f() {\n"
                   "  sched::RsMapper mapper(arch::rota_like());\n"
                   "}\n")
        self.assert_clean()

    def test_mapper_shim_files_exempt(self) -> None:
        self.write("src/sched/mapper.cpp",
                   "Mapper::Mapper(arch::AcceleratorConfig cfg,\n"
                   "               arch::EnergyModel energy)\n"
                   "    : Mapper(std::move(cfg), ObjectiveSpec{}, energy) "
                   "{}\n"
                   "void g() {\n"
                   "  Mapper shim(arch::rota_like());\n"
                   "}\n")
        self.assert_clean()

    def test_allow_escape(self) -> None:
        self.write("src/core/run.cpp",
                   "void f() {\n"
                   "  sched::Mapper legacy(cfg);  "
                   "// rota-lint: allow(mapper-objective)\n"
                   "}\n")
        self.assert_clean()


class CompileDbScoping(LintCase):
    VIOLATION = ("#include <cstdlib>\n"
                 "int roll() { return rand(); }\n")

    def test_cpp_outside_db_is_skipped(self) -> None:
        self.write("src/bad.cpp", self.VIOLATION)
        good = self.write("src/good.cpp", "int f() { return 1; }\n")
        db = self.root / "compile_commands.json"
        db.write_text(json.dumps(
            [{"directory": str(self.root), "file": str(good),
              "command": "c++ -c src/good.cpp"}]), encoding="utf-8")
        self.assert_clean("--compile-db", str(db))

    def test_cpp_inside_db_is_scanned(self) -> None:
        bad = self.write("src/bad.cpp", self.VIOLATION)
        db = self.root / "compile_commands.json"
        db.write_text(json.dumps(
            [{"directory": str(self.root), "file": str(bad),
              "command": "c++ -c src/bad.cpp"}]), encoding="utf-8")
        self.assert_fires("rng", "--compile-db", str(db), count=1)

    def test_headers_always_scanned(self) -> None:
        self.write("src/bad.hpp",
                   "#pragma once\n" + self.VIOLATION)
        db = self.root / "compile_commands.json"
        db.write_text("[]", encoding="utf-8")
        self.assert_fires("rng", "--compile-db", str(db), count=1)

    def test_relative_db_entries_resolve(self) -> None:
        self.write("src/bad.cpp", self.VIOLATION)
        db = self.root / "compile_commands.json"
        db.write_text(json.dumps(
            [{"directory": str(self.root), "file": "src/bad.cpp",
              "command": "c++ -c src/bad.cpp"}]), encoding="utf-8")
        self.assert_fires("rng", "--compile-db", str(db), count=1)


class ExistingRulesStillFire(LintCase):
    """Regression guard: growing the linter must not break the old rules."""

    def test_rng(self) -> None:
        self.write("src/a.cpp", "#include <random>\n"
                                "std::mt19937 g_rng;\n")
        self.assert_fires("rng", count=1)

    def test_pragma_once(self) -> None:
        self.write("src/a.hpp", "int x;\n")
        self.assert_fires("pragma-once", count=1)

    def test_log_discipline(self) -> None:
        self.write("src/wear/w.cpp",
                   "#include <iostream>\n"
                   "void report() { std::cout << 1; }\n")
        self.assert_fires("log-discipline", count=1)

    def test_log_discipline_covers_cli_commands(self) -> None:
        # Only main.cpp is exempt in src/cli; the command layer must
        # report through obs::EventLog like any other library code.
        self.write("src/cli/commands.cpp",
                   "#include <iostream>\n"
                   "void notice() { std::cerr << \"resuming\\n\"; }\n")
        self.assert_fires("log-discipline", count=1)

    def test_log_discipline_allows_terminal_sinks(self) -> None:
        body = ("#include <iostream>\n"
                "void render() { std::cerr << \"x\\n\"; }\n")
        self.write("src/cli/main.cpp", body)
        self.write("src/obs/progress.cpp", body)
        self.write("src/obs/event_log.cpp", body)
        self.assert_clean()


class RealTreeIsClean(unittest.TestCase):
    """The repository itself must pass its own linter."""

    def test_repo_clean(self) -> None:
        proc = run_lint(REPO_ROOT)
        self.assertEqual(proc.returncode, 0,
                         f"repo lint failures:\n{proc.stdout}{proc.stderr}")


if __name__ == "__main__":
    unittest.main(verbosity=2)
