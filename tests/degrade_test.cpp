#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <string>
#include <vector>

#include "arch/config.hpp"
#include "cli/commands.hpp"
#include "cli/options.hpp"
#include "cli/signals.hpp"
#include "fi/checkpoint.hpp"
#include "fi/degrade.hpp"
#include "fi/inject.hpp"
#include "fi/plan.hpp"
#include "nn/workloads.hpp"
#include "reliability/monte_carlo.hpp"
#include "reliability/spares.hpp"
#include "sched/array_state.hpp"
#include "sched/objective.hpp"
#include "util/check.hpp"
#include "util/io.hpp"
#include "wear/masked_policy.hpp"
#include "wear/policy.hpp"
#include "wear/usage_tracker.hpp"

namespace rota::fi {
namespace {

/// Unique scratch directory, removed on destruction.
struct TempDir {
  std::filesystem::path path;

  TempDir() {
    static std::atomic<int> counter{0};
    path = std::filesystem::temp_directory_path() /
           ("rota_degrade_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter.fetch_add(1)));
    std::filesystem::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  [[nodiscard]] std::string file(const std::string& name) const {
    return (path / name).string();
  }
};

HardwareFault fault(const std::string& spec) {
  auto parsed = parse_hardware_fault(spec);
  EXPECT_TRUE(parsed.ok()) << spec << ": " << parsed.error().message;
  return std::move(parsed).take();
}

DegradeOptions base_options(const std::vector<std::string>& fault_specs) {
  DegradeOptions opt;
  opt.iterations = 96;
  opt.spares = 2;
  opt.seed = 7;
  opt.objective = sched::parse_objective("energy").value();
  opt.retire_live_fraction = 0.9;
  opt.workload_tag = "AN";
  for (const std::string& spec : fault_specs) opt.faults.push_back(fault(spec));
  return opt;
}

const nn::Network& alexnet() {
  static const nn::Network net = nn::workload_by_abbr("AN");
  return net;
}

// ------------------------------------------------ determinism at any lanes

TEST(Degrade, TimelineIsBitIdenticalAcrossThreadCounts) {
  // Plan exhausts the 2-spare pool, so the run covers remaps, unmapped
  // faults, masked rotation and degraded-array rescheduling.
  const std::vector<std::string> plan = {"weibull=5", "pe=5,5@20"};
  DegradeReport reference;
  for (int threads : {1, 8, 0}) {
    DegradeOptions opt = base_options(plan);
    opt.threads = threads;
    const DegradeReport report =
        run_degraded_lifetime(arch::rota_like(), alexnet(), opt);
    if (threads == 1) {
      reference = report;
      EXPECT_GT(report.remaps, 0);
      EXPECT_GT(report.unmapped_faults, 0);
      EXPECT_GT(report.reschedules, 0);
      continue;
    }
    EXPECT_EQ(report.timeline_csv, reference.timeline_csv) << threads;
    EXPECT_EQ(report.events, reference.events) << threads;
    EXPECT_EQ(report.remaps, reference.remaps);
    EXPECT_EQ(report.reschedules, reference.reschedules);
    // Bit-equal doubles, not approximately equal ones.
    EXPECT_EQ(std::memcmp(&report.mttf_final, &reference.mttf_final,
                          sizeof(double)),
              0);
    EXPECT_EQ(std::memcmp(&report.final_energy, &reference.final_energy,
                          sizeof(double)),
              0);
  }
}

// ------------------------------------------------------ interrupt / resume

DegradeReport run_with_stop_at(const DegradeOptions& base,
                               const std::string& ckpt,
                               std::int64_t stop_boundary) {
  DegradeOptions opt = base;
  opt.checkpoint_path = ckpt;
  std::int64_t boundaries = 0;
  const DegradeReport stopped = run_degraded_lifetime(
      arch::rota_like(), alexnet(), opt,
      [&boundaries, stop_boundary] { return ++boundaries >= stop_boundary; });
  EXPECT_TRUE(stopped.interrupted);
  EXPECT_TRUE(std::filesystem::exists(ckpt));

  auto loaded = load_checkpoint(ckpt);
  EXPECT_TRUE(loaded.ok());
  const Checkpoint cp = std::move(loaded).take();
  DegradeOptions resume = base;
  resume.checkpoint_path = ckpt;
  resume.resume = &cp;
  const DegradeReport resumed =
      run_degraded_lifetime(arch::rota_like(), alexnet(), resume);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_FALSE(resumed.interrupted);
  return resumed;
}

TEST(Degrade, ResumeAcrossMidRunRemapIsByteEqual) {
  TempDir dir;
  const std::vector<std::string> plan = {"pe=5,5@20", "pe=8,3@40",
                                         "pe=2,9@60"};
  const DegradeOptions base = base_options(plan);
  const DegradeReport reference =
      run_degraded_lifetime(arch::rota_like(), alexnet(), base);
  EXPECT_GT(reference.remaps, 0);
  EXPECT_GT(reference.unmapped_faults, 0);

  // Stop between the second and third fault (boundary 50): the remapper
  // is mid-service, the schedule has been rebuilt once.
  const DegradeReport mid =
      run_with_stop_at(base, dir.file("mid.ckpt"), 50);
  EXPECT_EQ(mid.timeline_csv, reference.timeline_csv);
  EXPECT_EQ(mid.events, reference.events);
  EXPECT_EQ(mid.remaps, reference.remaps);
  EXPECT_EQ(mid.reschedules, reference.reschedules);
  EXPECT_EQ(mid.redirected_units, reference.redirected_units);
  EXPECT_EQ(std::memcmp(&mid.mttf_final, &reference.mttf_final,
                        sizeof(double)),
            0);

  // Stop exactly on a fault boundary — the hardest seam: the fault, the
  // remap/reschedule and the checkpoint land on the same iteration.
  const DegradeReport on_fault =
      run_with_stop_at(base, dir.file("onfault.ckpt"), 40);
  EXPECT_EQ(on_fault.timeline_csv, reference.timeline_csv);
  EXPECT_EQ(on_fault.events, reference.events);
  EXPECT_EQ(on_fault.redirected_units, reference.redirected_units);
}

TEST(Degrade, StaleCheckpointIsRefused) {
  TempDir dir;
  const std::string ckpt = dir.file("stale.ckpt");
  const DegradeOptions original = base_options({"pe=5,5@20"});
  std::int64_t boundaries = 0;
  DegradeOptions opt = original;
  opt.checkpoint_path = ckpt;
  const DegradeReport stopped =
      run_degraded_lifetime(arch::rota_like(), alexnet(), opt,
                            [&boundaries] { return ++boundaries >= 30; });
  ASSERT_TRUE(stopped.interrupted);

  auto loaded = load_checkpoint(ckpt);
  ASSERT_TRUE(loaded.ok());
  const Checkpoint cp = std::move(loaded).take();

  // A different fault plan is different work: the fingerprint gate fires.
  DegradeOptions other = base_options({"pe=4,4@10"});
  other.resume = &cp;
  EXPECT_THROW(run_degraded_lifetime(arch::rota_like(), alexnet(), other),
               util::precondition_error);

  // So is a different mode under the same plan.
  DegradeOptions oblivious = original;
  oblivious.mode = DegradeMode::kFaultOblivious;
  oblivious.resume = &cp;
  EXPECT_THROW(
      run_degraded_lifetime(arch::rota_like(), alexnet(), oblivious),
      util::precondition_error);
}

// ------------------------------------------------- exhaustion / retirement

TEST(Degrade, SpareExhaustionDegradesThenRetires) {
  DegradeOptions opt = base_options({"pe=1,1@5", "pe=2,2@10", "pe=3,3@15"});
  opt.spares = 0;
  opt.retire_live_fraction = 0.99;  // 14x12: retire below 167 live PEs
  const DegradeReport report =
      run_degraded_lifetime(arch::rota_like(), alexnet(), opt);
  EXPECT_TRUE(report.retired);
  EXPECT_EQ(report.retired_at, 10);  // second un-spared death: 166 < 167
  EXPECT_EQ(report.iterations_run, 10);
  EXPECT_EQ(report.reschedules, 1);  // the first death rescheduled
  EXPECT_EQ(report.mttf_final, 0.0);
  EXPECT_NE(report.timeline_csv.find(",retire,"), std::string::npos);
}

TEST(Degrade, ObliviousModeFailStopsWhereAwareKeepsServing) {
  const std::vector<std::string> plan = {"pe=5,5@20", "pe=8,3@40",
                                         "pe=2,9@60"};
  DegradeOptions aware = base_options(plan);
  aware.spares = 1;
  DegradeOptions oblivious = aware;
  oblivious.mode = DegradeMode::kFaultOblivious;

  const DegradeReport a =
      run_degraded_lifetime(arch::rota_like(), alexnet(), aware);
  const DegradeReport o =
      run_degraded_lifetime(arch::rota_like(), alexnet(), oblivious);

  // Same physical fault history on both devices.
  EXPECT_EQ(a.faults_injected, o.faults_injected);
  EXPECT_EQ(a.first_unspared_at, o.first_unspared_at);
  EXPECT_EQ(o.first_unspared_at, 40);

  // The oblivious device never reacts: no reschedule, work lands on dead
  // silicon, and its fail-stop service ended at the first un-spared
  // fault — zero residual lifetime.
  EXPECT_EQ(o.reschedules, 0);
  EXPECT_GT(o.lost_units, 0);
  EXPECT_EQ(o.mttf_final, 0.0);

  // The aware device rescheduled around the dead PEs, lost nothing, and
  // retains a positive residual lifetime on its live set.
  EXPECT_GT(a.reschedules, 0);
  EXPECT_EQ(a.lost_units, 0);
  EXPECT_GT(a.mttf_final, 0.0);
  EXPECT_GT(a.retire_budget, 0);
  EXPECT_EQ(a.mttf_tolerance, a.retire_budget);  // free pool is empty
}

// ----------------------------------------- with-spares Monte-Carlo estimator

TEST(MonteCarloSpares, AgreesWithClosedFormWithinSamplingError) {
  // A deliberately uneven live set, like a degraded array's.
  std::vector<double> alphas;
  for (int i = 0; i < 24; ++i)
    alphas.push_back(0.5 + 0.03 * static_cast<double>(i % 7));
  for (std::int64_t spares : {0, 2, 5}) {
    const double closed = rel::spare_array_mttf(alphas, spares);
    const rel::MonteCarloResult mc =
        rel::monte_carlo_spare_mttf(alphas, spares, rel::kJedecShape, 1.0,
                                    60000, 11, 4);
    EXPECT_NEAR(mc.mttf, closed, 4.0 * mc.stderr_ + 1e-12)
        << "spares=" << spares;
  }
}

TEST(MonteCarloSpares, IsBitIdenticalAcrossThreadCounts) {
  const std::vector<double> alphas = {1.0, 0.8, 0.9, 0.7, 1.0, 0.6};
  const rel::MonteCarloResult serial =
      rel::monte_carlo_spare_mttf(alphas, 2, rel::kJedecShape, 1.0, 20000,
                                  3, 1);
  const rel::MonteCarloResult wide =
      rel::monte_carlo_spare_mttf(alphas, 2, rel::kJedecShape, 1.0, 20000,
                                  3, 8);
  EXPECT_EQ(std::memcmp(&serial.mttf, &wide.mttf, sizeof(double)), 0);
  EXPECT_EQ(std::memcmp(&serial.stderr_, &wide.stderr_, sizeof(double)), 0);
}

// ----------------------------------------------------------- masked policy

TEST(MaskedPolicy, NextOriginNeverCoversDeadPEs) {
  const sched::ArrayState mask(6, 6, {{0, 0}, {3, 3}});
  for (wear::PolicyKind kind :
       {wear::PolicyKind::kRwl, wear::PolicyKind::kRwlRo,
        wear::PolicyKind::kDiagonalStride, wear::PolicyKind::kRandomStart}) {
    wear::MaskedPolicy policy(wear::make_policy(kind, 6, 6, 42), mask);
    const sched::UtilSpace space{2, 2};
    policy.begin_layer(space);
    for (int t = 0; t < 72; ++t) {
      const wear::Placement p = policy.next_origin(space);
      for (std::int64_t dv = 0; dv < space.y; ++dv) {
        for (std::int64_t du = 0; du < space.x; ++du) {
          EXPECT_FALSE(mask.dead((p.u + du) % 6, (p.v + dv) % 6))
              << wear::to_string(kind) << " tile " << t;
        }
      }
    }
  }
}

TEST(MaskedPolicy, BulkPathMatchesPerTilePathBitForBit) {
  const sched::ArrayState mask(6, 6, {{1, 4}, {4, 1}});
  for (wear::PolicyKind kind :
       {wear::PolicyKind::kBaseline, wear::PolicyKind::kRwl,
        wear::PolicyKind::kRwlRo, wear::PolicyKind::kDiagonalStride}) {
    wear::MaskedPolicy bulk(wear::make_policy(kind, 6, 6, 42), mask);
    wear::MaskedPolicy tile(wear::make_policy(kind, 6, 6, 42), mask);
    wear::UsageTracker bulk_tracker(6, 6);
    wear::UsageTracker tile_tracker(6, 6);
    const sched::UtilSpace space{3, 2};
    constexpr std::int64_t kTiles = 157;  // forces a partial final pass
    bulk.begin_layer(space);
    tile.begin_layer(space);
    const std::int64_t done =
        bulk.bulk_process(space, kTiles, bulk_tracker, true, 3);
    ASSERT_EQ(done, kTiles) << wear::to_string(kind);
    for (std::int64_t t = 0; t < kTiles; ++t) {
      const wear::Placement p = tile.next_origin(space);
      tile_tracker.add_space(p.u, p.v, space.x, space.y, 3, true);
    }
    EXPECT_EQ(bulk_tracker.usage().cells(), tile_tracker.usage().cells())
        << wear::to_string(kind);
    // The inner rotation state advanced identically: the next emitted
    // origins agree.
    for (int t = 0; t < 8; ++t) {
      const wear::Placement a = bulk.next_origin(space);
      const wear::Placement b = tile.next_origin(space);
      EXPECT_EQ(a.u, b.u) << wear::to_string(kind);
      EXPECT_EQ(a.v, b.v) << wear::to_string(kind);
    }
  }
}

TEST(MaskedPolicy, AllLiveMaskIsByteIdenticalToInnerPolicy) {
  wear::MaskedPolicy masked(wear::make_policy(wear::PolicyKind::kRwlRo, 6, 6),
                            sched::ArrayState{});
  auto inner = wear::make_policy(wear::PolicyKind::kRwlRo, 6, 6);
  const sched::UtilSpace space{3, 2};
  masked.begin_layer(space);
  inner->begin_layer(space);
  for (int t = 0; t < 64; ++t) {
    const wear::Placement a = masked.next_origin(space);
    const wear::Placement b = inner->next_origin(space);
    EXPECT_EQ(a.u, b.u);
    EXPECT_EQ(a.v, b.v);
  }
}

// -------------------------------------------- policy / tracker round-trips

TEST(Degrade, PolicyStateRoundTripsThroughPackUnpack) {
  const sched::UtilSpace space{3, 2};
  for (wear::PolicyKind kind :
       {wear::PolicyKind::kBaseline, wear::PolicyKind::kRwl,
        wear::PolicyKind::kRwlRo, wear::PolicyKind::kRandomStart,
        wear::PolicyKind::kDiagonalStride}) {
    auto original = wear::make_policy(kind, 7, 5, 99);
    original->begin_layer(space);
    for (int t = 0; t < 23; ++t) (void)original->next_origin(space);

    auto restored = wear::make_policy(kind, 7, 5, 99);
    restored->unpack_state(original->pack_state());
    for (int t = 0; t < 16; ++t) {
      const wear::Placement a = original->next_origin(space);
      const wear::Placement b = restored->next_origin(space);
      EXPECT_EQ(a.u, b.u) << wear::to_string(kind);
      EXPECT_EQ(a.v, b.v) << wear::to_string(kind);
    }
  }
}

TEST(Degrade, TrackerRestoreCellsRoundTrips) {
  wear::UsageTracker tracker(5, 4);
  tracker.add_space(1, 1, 3, 2, 7, true);
  tracker.add_space(4, 3, 2, 2, 3, true);  // wraps
  wear::UsageTracker restored(5, 4);
  restored.restore_cells(tracker.usage().cells());
  EXPECT_EQ(restored.usage().cells(), tracker.usage().cells());
  EXPECT_EQ(restored.total_pe_allocations(), tracker.total_pe_allocations());
  // Still usable after restore.
  restored.add_space(0, 0, 1, 1, 1, false);
  tracker.add_space(0, 0, 1, 1, 1, false);
  EXPECT_EQ(restored.usage().cells(), tracker.usage().cells());
}

// -------------------------------- wear-dependent static fault resolution

TEST(ArrayStateFromFaults, RankResolvesAgainstTheSnapshot) {
  WearSnapshot wear;
  wear.usage.assign(12, 0);
  for (std::size_t i = 0; i < wear.usage.size(); ++i)
    wear.usage[i] = static_cast<std::int64_t>(i);  // most worn: index 11
  const std::vector<HardwareFault> faults = {fault("rank=0@1")};
  auto state = array_state_from_faults(4, 3, faults, 0, wear);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state.value().dead_count(), 1);
  EXPECT_TRUE(state.value().dead(3, 2));  // index 11 = (3, 2)
}

TEST(ArrayStateFromFaults, WeibullSamplesDistinctPEsDeterministically) {
  WearSnapshot wear;
  wear.usage.assign(12, 5);
  wear.seed = 123;
  const std::vector<HardwareFault> faults = {fault("weibull=3")};
  auto first = array_state_from_faults(4, 3, faults, 0, wear);
  auto second = array_state_from_faults(4, 3, faults, 0, wear);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first.value().dead_count(), 3);  // distinct picks
  EXPECT_EQ(first.value().digest(), second.value().digest());

  // A spare pool absorbs the deaths: the static map is intact again.
  auto spared = array_state_from_faults(4, 3, faults, 3, wear);
  ASSERT_TRUE(spared.ok());
  EXPECT_EQ(spared.value().dead_count(), 0);
}

TEST(ArrayStateFromFaults, WearDependentSpecsNeedASnapshot) {
  const std::vector<HardwareFault> faults = {fault("rank=0@1")};
  auto state = array_state_from_faults(4, 3, faults, 0);
  EXPECT_FALSE(state.ok());
}

TEST(ArrayStateFromFaults, SnapshotGeometryMustMatch) {
  WearSnapshot wear;
  wear.usage.assign(6, 1);  // wrong size for 4x3
  const std::vector<HardwareFault> faults = {fault("rank=0@1")};
  auto state = array_state_from_faults(4, 3, faults, 0, wear);
  EXPECT_FALSE(state.ok());
}

// ------------------------------------------------------------ CLI surface

/// Run `rota <args>` in-process, returning {exit code, stdout}.
std::pair<int, std::string> run_cli(const std::vector<std::string>& args) {
  const cli::Options options = cli::parse(args);
  std::ostringstream out;
  const int rc = cli::run(options, out);
  return {rc, out.str()};
}

TEST(DegradeCli, InterruptAndResumeReproduceTheExactTimeline) {
  TempDir dir;
  const std::string ref_csv = dir.file("ref.csv");
  const std::string resumed_csv = dir.file("resumed.csv");
  const std::string ckpt = dir.file("degrade.ckpt");
  const std::vector<std::string> base = {
      "degrade", "AN",      "--iters",  "96",       "--spares", "2",
      "--fault", "pe=5,5@20", "--fault", "pe=8,3@40", "--seed",  "7"};

  std::vector<std::string> ref_args = base;
  ref_args.insert(ref_args.end(), {"--csv", ref_csv});
  auto [ref_rc, ref_out] = run_cli(ref_args);
  ASSERT_EQ(ref_rc, 0);

  std::vector<std::string> ckpt_args = base;
  ckpt_args.insert(ckpt_args.end(),
                   {"--csv", resumed_csv, "--checkpoint", ckpt});
  cli::clear_interrupt();
  cli::simulate_interrupt_after(50);  // boundary 50: one remap behind us
  auto [killed_rc, killed_out] = run_cli(ckpt_args);
  EXPECT_EQ(killed_rc, cli::kExitInterrupted);
  EXPECT_TRUE(std::filesystem::exists(ckpt));

  cli::clear_interrupt();
  auto [resumed_rc, resumed_out] = run_cli(ckpt_args);
  ASSERT_EQ(resumed_rc, 0);
  EXPECT_EQ(util::read_text_file(ref_csv), util::read_text_file(resumed_csv));
  EXPECT_FALSE(std::filesystem::exists(ckpt));  // finished runs clean up
}

TEST(DegradeCli, RetirementExitsWithCode5) {
  cli::clear_interrupt();
  auto [rc, out] =
      run_cli({"degrade", "AN", "--iters", "64", "--spares", "0", "--fault",
               "pe=1,1@5", "--fault", "pe=2,2@10", "--retire", "0.99"});
  EXPECT_EQ(rc, cli::kExitRetired);
  EXPECT_NE(out.find("retire"), std::string::npos);
}

TEST(DegradeCli, InjectReschedRoutesThroughTheDegradeEngine) {
  cli::clear_interrupt();
  auto [rc, out] = run_cli({"inject", "AN", "--iters", "48", "--spares", "1",
                            "--fault", "pe=5,5@10", "--fault", "pe=8,3@20",
                            "--resched"});
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("mode aware"), std::string::npos);
  EXPECT_NE(out.find("reschedule"), std::string::npos);
}

}  // namespace
}  // namespace rota::fi
