/// Extension: energy breakdown of the energy-optimal schedules — the
/// quantity the mapper actually minimizes. Printed per workload in
/// MAC-normalized units split by memory level, with the classic
/// Eyeriss-style shape: DRAM dominates unless reuse is high, and the
/// lightweight networks pay proportionally more for data movement.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace rota;
  bench::banner("Extension: energy breakdown",
                "per-workload energy by memory level (MAC units)");

  const arch::EnergyModel em;
  sched::Mapper mapper(arch::eyeriss_like(), sched::ObjectiveSpec{});
  util::TextTable table({"network", "MAC", "LB", "inter-PE", "GLB", "DRAM",
                         "total/MAC"});
  std::vector<std::vector<std::string>> csv;
  for (const auto& net : nn::all_workloads()) {
    const auto ns = mapper.schedule_network(net);
    arch::AccessCounts total;
    for (const auto& l : ns.layers) total += l.accesses;
    const double mac = em.mac * static_cast<double>(total.macs);
    const double lb = em.lb_access * static_cast<double>(total.lb_accesses);
    const double hop =
        em.inter_pe_hop * static_cast<double>(total.inter_pe_hops);
    const double glb =
        em.glb_access * static_cast<double>(total.glb_accesses);
    const double dram =
        em.dram_access * static_cast<double>(total.dram_accesses);
    const double sum = mac + lb + hop + glb + dram;
    auto pct = [&](double v) { return util::fmt_pct(v / sum); };
    table.add_row({net.abbr(), pct(mac), pct(lb), pct(hop), pct(glb),
                   pct(dram),
                   util::fmt(sum / static_cast<double>(total.macs), 2)});
    csv.push_back({net.abbr(), util::fmt(mac / sum, 4),
                   util::fmt(lb / sum, 4), util::fmt(hop / sum, 4),
                   util::fmt(glb / sum, 4), util::fmt(dram / sum, 4)});
  }
  bench::emit(table, {"abbr", "mac", "lb", "inter_pe", "glb", "dram"}, csv);

  std::cout << "Observation: convolutional workloads amortize DRAM traffic "
               "over high reuse; FC/attention-heavy and\ndepthwise-heavy "
               "workloads spend most energy moving data — consistent with "
               "the published Eyeriss analyses.\n";
  return 0;
}
