/// Ablation (beyond the paper): thermally-coupled wear. Concentrated
/// activity heats the corner of the baseline array, and wear-out
/// accelerates exponentially with temperature (Arrhenius, JEDEC JEP122H).
/// Feeding thermally-accelerated effective stress into Eq. 4 shows the
/// paper's time-only model *understates* the wear-leveling benefit: RWL+RO
/// removes both the usage imbalance and the hotspot driving acceleration.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace rota;
  using wear::PolicyKind;
  bench::banner("Ablation: thermal coupling",
                "lifetime gain with Arrhenius-accelerated wear");

  const thermal::ThermalModel model;

  util::TextTable table({"network", "peak T base (C)", "peak T RWL+RO (C)",
                         "gain (time-only)", "gain (thermal)"});
  std::vector<std::vector<std::string>> csv;
  for (const char* abbr : {"Res", "YL", "Sqz", "Mb"}) {
    Experiment exp({arch::rota_like(), 300});
    const auto res = exp.run(nn::workload_by_abbr(abbr),
                             {PolicyKind::kBaseline, PolicyKind::kRwlRo});
    const auto& base_usage = bench::run_of(res, PolicyKind::kBaseline).usage;
    const auto& ro_usage = bench::run_of(res, PolicyKind::kRwlRo).usage;

    // One shared activity scale: both schemes did the same work in the
    // same time, and the baseline's corner PE is the busiest of all.
    std::int64_t ref = 0;
    for (std::int64_t v : base_usage.cells()) ref = std::max(ref, v);
    for (std::int64_t v : ro_usage.cells()) ref = std::max(ref, v);

    auto peak_temp = [&](const util::Grid<std::int64_t>& usage) {
      const auto temp =
          model.steady_state(model.power_from_usage(usage, ref));
      double peak = 0.0;
      for (double t : temp.cells()) peak = std::max(peak, t);
      return peak;
    };

    const double gain_time =
        res.improvement_over_baseline(PolicyKind::kRwlRo);
    const double gain_thermal = rel::lifetime_improvement(
        thermal::accelerated_alphas(base_usage, model, 0.7, ref),
        thermal::accelerated_alphas(ro_usage, model, 0.7, ref));

    table.add_row({abbr, util::fmt(peak_temp(base_usage), 1),
                   util::fmt(peak_temp(ro_usage), 1),
                   util::fmt(gain_time, 2) + "x",
                   util::fmt(gain_thermal, 2) + "x"});
    csv.push_back({abbr, util::fmt(gain_time, 4),
                   util::fmt(gain_thermal, 4)});
  }
  bench::emit(table, {"abbr", "gain_time_only", "gain_thermal"}, csv);

  std::cout << "Observation: the baseline's corner hotspot runs hotter than "
               "anything on the leveled array, so the\nArrhenius-coupled "
               "gain exceeds the paper's time-only Eq. 4 figure on every "
               "workload.\n";
  return 0;
}
