/// Reproduces Fig. 10: relative lifetime of Baseline / RWL / RWL+RO for
/// growing PE array sizes running SqueezeNet. Larger arrays tend to lower
/// the PE utilization ratio, which widens the wear-leveling opportunity —
/// RWL+RO gains more on bigger arrays.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace rota;
  using wear::PolicyKind;
  bench::banner("Fig. 10",
                "lifetime improvement vs PE array size (SqueezeNet)");

  const nn::Network net = nn::make_squeezenet();
  util::TextTable table({"array", "PEs", "mean util", "Baseline", "RWL",
                         "RWL+RO"});
  std::vector<std::vector<std::string>> csv;

  double first_gain = 0.0;
  double last_gain = 0.0;
  for (std::int64_t side : {8, 12, 16, 20, 24, 28, 32}) {
    ExperimentConfig cfg;
    cfg.accel = arch::scaled_array(side, arch::TopologyKind::kTorus2D);
    cfg.iterations = 1000;
    Experiment exp(cfg);
    const auto res = exp.run(net, bench::paper_policies());
    const double rwl = res.improvement_over_baseline(PolicyKind::kRwl);
    const double ro = res.improvement_over_baseline(PolicyKind::kRwlRo);
    if (first_gain == 0.0) first_gain = ro;
    last_gain = ro;
    const std::string dim = std::to_string(side) + "x" + std::to_string(side);
    table.add_row({dim, std::to_string(side * side),
                   util::fmt_pct(res.schedule.mean_utilization()), "1.00x",
                   util::fmt(rwl, 2) + "x", util::fmt(ro, 2) + "x"});
    csv.push_back({std::to_string(side),
                   util::fmt(res.schedule.mean_utilization(), 4),
                   util::fmt(rwl, 4), util::fmt(ro, 4)});
  }
  bench::emit(table, {"side", "mean_util", "rwl", "rwl_ro"}, csv);

  std::cout << "Shape check: RWL+RO gains grow from "
            << util::fmt(first_gain, 2) << "x (8x8) to "
            << util::fmt(last_gain, 2)
            << "x (32x32); the trend is upward with mapper-induced wiggles "
               "at divisor-friendly sizes\n(paper Fig. 10: monotone growth "
               "with array size).\n";
  return 0;
}
