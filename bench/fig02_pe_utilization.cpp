/// Reproduces Fig. 2: (a) mean PE utilization of every Table II workload
/// under energy-optimal execution on the 14×12 Eyeriss-style array —
/// the paper reports a 55.8% average; (b) the drastic per-layer utilization
/// spread inside SqueezeNet.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace rota;

  bench::banner("Fig. 2a", "PE utilization of DNN workloads (Eyeriss 14x12)");

  const auto schedules = bench::schedule_all_workloads(arch::eyeriss_like());

  util::TextTable table({"network", "abbr", "layers", "mean util",
                         "tile-weighted util", "min layer", "max layer"});
  std::vector<std::vector<std::string>> csv;
  double mean_sum = 0.0;
  for (const auto& ns : schedules) {
    double lo = 1.0;
    double hi = 0.0;
    for (const auto& l : ns.layers) {
      lo = std::min(lo, l.utilization(ns.config));
      hi = std::max(hi, l.utilization(ns.config));
    }
    mean_sum += ns.mean_utilization();
    table.add_row({ns.network_name, ns.network_abbr,
                   std::to_string(ns.layers.size()),
                   util::fmt_pct(ns.mean_utilization()),
                   util::fmt_pct(ns.tile_weighted_utilization()),
                   util::fmt_pct(lo), util::fmt_pct(hi)});
    csv.push_back({ns.network_abbr, util::fmt(ns.mean_utilization(), 4),
                   util::fmt(ns.tile_weighted_utilization(), 4),
                   util::fmt(lo, 4), util::fmt(hi, 4)});
  }
  bench::emit(table, {"abbr", "mean_util", "tile_weighted_util", "min_layer",
                      "max_layer"},
              csv);
  std::cout << "zoo average PE utilization: "
            << util::fmt_pct(mean_sum / static_cast<double>(schedules.size()))
            << "   (paper Fig. 2a: 55.8% with NeuroSpector mappings)\n";

  bench::banner("Fig. 2b", "per-layer PE utilization of SqueezeNet layers");
  sched::Mapper mapper(arch::eyeriss_like(), sched::ObjectiveSpec{});
  const auto sqz = mapper.schedule_network(nn::make_squeezenet());
  util::TextTable layers({"layer", "space", "tiles Z", "utilization"});
  std::vector<std::vector<std::string>> layer_csv;
  for (const auto& l : sqz.layers) {
    const std::string space =
        std::to_string(l.space.x) + "x" + std::to_string(l.space.y);
    layers.add_row({l.layer_name, space, std::to_string(l.tiles),
                    util::fmt_pct(l.utilization(sqz.config))});
    layer_csv.push_back({l.layer_name, std::to_string(l.space.x),
                         std::to_string(l.space.y), std::to_string(l.tiles),
                         util::fmt(l.utilization(sqz.config), 4)});
  }
  bench::emit(layers, {"layer", "x", "y", "tiles", "utilization"}, layer_csv);
  return 0;
}
