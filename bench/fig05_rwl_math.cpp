/// Reproduces Fig. 5 and the §IV-C worked example: the RWL stride
/// arithmetic (Eqs. 5–11). The paper's anchor — ResNet C5 with 8×8
/// utilization spaces and Z = 32 tiles on the 14×12 array — gives
/// lcm(14,8) = 56, X = 7, W = 4, Y = 4, H_RWL = 2, D_max <= 5; and for the
/// whole ResNet pass, R_diff ≈ 0.01. Each closed-form row is cross-checked
/// against the wear simulator.

#include <iostream>

#include "bench_common.hpp"

namespace {

rota::wear::UsageStats simulate_fresh_rwl(const rota::wear::RwlParams& p) {
  using namespace rota;
  wear::UsageTracker tracker(p.w, p.h);
  auto policy = wear::make_policy(wear::PolicyKind::kRwl, p.w, p.h);
  const sched::UtilSpace space{p.x, p.y};
  policy->begin_layer(space);
  for (std::int64_t i = 0; i < p.z; ++i) {
    const wear::Placement at = policy->next_origin(space);
    tracker.add_space(at.u, at.v, p.x, p.y, 1, true);
  }
  return tracker.stats();
}

}  // namespace

int main() {
  using namespace rota;
  bench::banner("Fig. 5 / Table I", "rotational wear-leveling arithmetic");

  std::cout << "Paper anchor (ResNet C5, 8x8 spaces, Z = 32 on 14x12):\n";
  const wear::RwlParams anchor{14, 12, 8, 8, 32};
  const wear::RwlDerived ad = wear::rwl_derive(anchor);
  const wear::UsageStats as = simulate_fresh_rwl(anchor);
  util::TextTable at({"quantity", "formula", "value", "paper"});
  at.add_row({"X (horizontal strides)", "lcm(w,x)/x",
              std::to_string(ad.strides_x), "7"});
  at.add_row({"W (horizontal unfolds)", "lcm(w,x)/w",
              std::to_string(ad.unfold_w), "4"});
  at.add_row({"Y (vertical strides)", "floor(Z/X)",
              std::to_string(ad.strides_y), "4"});
  at.add_row({"H_RWL (vertical unfolds)", "floor(Y*y/h)",
              std::to_string(ad.unfold_h), "2"});
  at.add_row({"D_max bound", "W + 1", std::to_string(ad.d_max_bound),
              "<= 5"});
  at.add_row({"D_max simulated", "wear simulator",
              std::to_string(as.max_diff), "-"});
  at.add_row({"min(A_PE) bound", "Eq. 10", std::to_string(ad.min_a_pe),
              "-"});
  at.add_row({"min(A_PE) simulated", "wear simulator",
              std::to_string(as.min), "-"});
  std::cout << at.str() << '\n';

  bench::banner("Fig. 5 (full ResNet)",
                "per-layer RWL arithmetic on scheduled utilization spaces");
  sched::Mapper mapper(arch::rota_like(), sched::ObjectiveSpec{});
  const auto ns = mapper.schedule_network(nn::make_resnet50());

  util::TextTable table({"layer", "space", "Z", "X", "W", "H_RWL",
                         "D_max<=", "D_max sim", "min(A) >=", "min(A) sim"});
  std::vector<std::vector<std::string>> csv;
  double d_sum = 0.0;
  std::int64_t min_sum = 0;
  for (const auto& l : ns.layers) {
    const wear::RwlParams p{ns.config.array_width, ns.config.array_height,
                            l.space.x, l.space.y, l.tiles};
    const wear::RwlDerived d = wear::rwl_derive(p);
    const wear::UsageStats s = simulate_fresh_rwl(p);
    d_sum += static_cast<double>(s.max_diff);
    min_sum += s.min;
    const std::string space =
        std::to_string(l.space.x) + "x" + std::to_string(l.space.y);
    table.add_row({l.layer_name, space, std::to_string(l.tiles),
                   std::to_string(d.strides_x), std::to_string(d.unfold_w),
                   std::to_string(d.unfold_h), std::to_string(d.d_max_bound),
                   std::to_string(s.max_diff), std::to_string(d.min_a_pe),
                   std::to_string(s.min)});
    csv.push_back({l.layer_name, std::to_string(l.space.x),
                   std::to_string(l.space.y), std::to_string(l.tiles),
                   std::to_string(d.strides_x), std::to_string(d.unfold_w),
                   std::to_string(d.unfold_h), std::to_string(d.d_max_bound),
                   std::to_string(s.max_diff), std::to_string(d.min_a_pe),
                   std::to_string(s.min)});
  }
  bench::emit(table,
              {"layer", "x", "y", "z", "X", "W", "H_RWL", "dmax_bound",
               "dmax_sim", "minA_bound", "minA_sim"},
              csv);

  const double mean_d = d_sum / static_cast<double>(ns.layers.size());
  const double r_diff =
      min_sum > 0 ? mean_d / static_cast<double>(min_sum) : 0.0;
  std::cout << "network aggregate: mean per-layer D_max = "
            << util::fmt(mean_d, 2)
            << ", summed min(A_PE) over one pass = " << min_sum
            << ", R_diff = " << util::fmt(r_diff, 4)
            << "\n(paper quotes D_max = 1.76, min(A_PE) = 170.4, "
               "R_diff = 0.01 for its NeuroSpector tiling)\n";
  return 0;
}
