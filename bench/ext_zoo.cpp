/// Extension (beyond the paper): the Fig. 8 comparison on the extended
/// workload zoo — AlexNet and VGG-16 (the original Eyeriss evaluation
/// CNNs) and BERT-Base — to show the wear-leveling result generalizes
/// past Table II.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace rota;
  using wear::PolicyKind;
  bench::banner("Extension: extended zoo",
                "relative lifetime on AlexNet / VGG-16 / BERT-Base");

  util::TextTable table({"network", "abbr", "mean util", "RWL", "RWL+RO"});
  std::vector<std::vector<std::string>> csv;
  for (const char* abbr : {"AN", "VGG", "BRT"}) {
    const nn::Network net = nn::workload_by_abbr(abbr);
    Experiment exp({arch::rota_like(), 1000});
    const auto res = exp.run(net, bench::paper_policies());
    const double rwl = res.improvement_over_baseline(PolicyKind::kRwl);
    const double ro = res.improvement_over_baseline(PolicyKind::kRwlRo);
    table.add_row({net.name(), net.abbr(),
                   util::fmt_pct(res.schedule.mean_utilization()),
                   util::fmt(rwl, 2) + "x", util::fmt(ro, 2) + "x"});
    csv.push_back({net.abbr(), util::fmt(res.schedule.mean_utilization(), 4),
                   util::fmt(rwl, 4), util::fmt(ro, 4)});
  }
  bench::emit(table, {"abbr", "mean_util", "rwl", "rwl_ro"}, csv);

  std::cout << "Observation: the classic CNNs and an encoder transformer "
               "show the same shape as Table II —\nmore misalignment, more "
               "lifetime back from rotation.\n";
  return 0;
}
