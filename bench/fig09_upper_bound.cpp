/// Reproduces Fig. 9: layer-wise lifetime improvement of per-layer RWL
/// versus the layer's PE utilization ratio, against the theoretical upper
/// bound utilization^(1/β − 1) achievable by perfect wear-leveling (§V-C).
/// RWL must track the bound closely from below.

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace rota;
  using wear::PolicyKind;
  bench::banner("Fig. 9",
                "layer-wise lifetime improvement vs PE utilization bound");

  util::TextTable table({"workload", "layer", "util", "RWL gain",
                         "upper bound", "gap"});
  std::vector<std::vector<std::string>> csv;
  std::vector<double> ratios;

  for (const auto& net : nn::all_workloads()) {
    Experiment exp({arch::rota_like(), 100});
    sched::Mapper& mapper = exp.mapper();
    // One representative per distinct utilization space per network keeps
    // the table readable while covering every shape class.
    std::vector<std::string> seen_spaces;
    for (const auto& layer : net.layers()) {
      const auto ls = mapper.schedule_layer(layer);
      const std::string space_key = std::to_string(ls.space.x) + "x" +
                                    std::to_string(ls.space.y);
      bool seen = false;
      for (const auto& s : seen_spaces) seen |= (s == space_key);
      if (seen) continue;
      seen_spaces.push_back(space_key);

      nn::Network single("single", "one", net.domain());
      single.add(layer);
      const auto res =
          exp.run(single, {PolicyKind::kBaseline, PolicyKind::kRwl});
      const double gain = res.improvement_over_baseline(PolicyKind::kRwl);
      const double util = ls.utilization(exp.config().accel);
      const double bound =
          rel::perfect_wl_upper_bound(util, exp.config().beta);
      ratios.push_back(gain / bound);
      table.add_row({net.abbr(), layer.name + " (" + space_key + ")",
                     util::fmt_pct(util), util::fmt(gain, 3) + "x",
                     util::fmt(bound, 3) + "x",
                     util::fmt_pct(1.0 - gain / bound)});
      csv.push_back({net.abbr(), layer.name, util::fmt(util, 4),
                     util::fmt(gain, 4), util::fmt(bound, 4)});
    }
  }
  bench::emit(table, {"workload", "layer", "utilization", "rwl_gain",
                      "upper_bound"},
              csv);

  std::sort(ratios.begin(), ratios.end());
  const double median = ratios[ratios.size() / 2];
  std::size_t near = 0;
  for (double r : ratios)
    if (r >= 0.9) ++near;
  std::cout << "Shape check: every point sits on or below the bound; the "
               "median gain/bound ratio is "
            << util::fmt_pct(median) << " and "
            << util::fmt_pct(static_cast<double>(near) /
                             static_cast<double>(ratios.size()))
            << " of spaces reach 90% of it.\nLayers far below the bound are "
               "the tiny-Z ones (a handful of tiles cannot rotate far); the "
               "paper notes the same gap and closes it with RO across "
               "layers.\n";
  return 0;
}
