/// Ablation (beyond the paper): how the mapper's factorization discipline
/// changes the wear-leveling story. The default exact-divisor mapspace
/// (Timeloop/NeuroSpector convention) under-fills the array and leaves
/// headroom for RWL+RO; a padding-capable mapper fills big GEMMs to ~100%
/// of the array, which shrinks the wear-leveling benefit — utilization
/// imbalance, not wear-leveling, is what disappears.

#include <iostream>

#include "bench_common.hpp"

namespace {

struct Row {
  double util = 0.0;
  double gain = 0.0;
};

Row measure(const rota::nn::Network& net, bool exact) {
  using namespace rota;
  using wear::PolicyKind;
  ExperimentConfig cfg;
  cfg.iterations = 300;
  Experiment exp(cfg);
  // Re-map the network with the requested mapspace.
  sched::Mapper mapper(cfg.accel, sched::ObjectiveSpec{}, {},
                       sched::MapperOptions{exact});
  const auto ns = mapper.schedule_network(net);

  Row row;
  row.util = ns.mean_utilization();
  wear::WearSimulator base_sim(cfg.accel);
  auto base = wear::make_policy(PolicyKind::kBaseline, 14, 12);
  base_sim.run_iterations(ns, *base, cfg.iterations);
  wear::WearSimulator ro_sim(cfg.accel);
  auto ro = wear::make_policy(PolicyKind::kRwlRo, 14, 12);
  ro_sim.run_iterations(ns, *ro, cfg.iterations);
  row.gain = rel::lifetime_improvement(base_sim.tracker().usage_as_doubles(),
                                       ro_sim.tracker().usage_as_doubles());
  return row;
}

}  // namespace

int main() {
  using namespace rota;
  bench::banner("Ablation: mapper factorization",
                "exact divisors (NeuroSpector-style) vs padded mapspace");

  util::TextTable table({"network", "util (exact)", "RWL+RO gain (exact)",
                         "util (padded)", "RWL+RO gain (padded)"});
  std::vector<std::vector<std::string>> csv;
  for (const char* abbr : {"Sqz", "Mb", "VT", "LM"}) {
    const nn::Network net = nn::workload_by_abbr(abbr);
    const Row exact = measure(net, true);
    const Row padded = measure(net, false);
    table.add_row({abbr, util::fmt_pct(exact.util),
                   util::fmt(exact.gain, 2) + "x", util::fmt_pct(padded.util),
                   util::fmt(padded.gain, 2) + "x"});
    csv.push_back({abbr, util::fmt(exact.util, 4), util::fmt(exact.gain, 4),
                   util::fmt(padded.util, 4), util::fmt(padded.gain, 4)});
  }
  bench::emit(table, {"abbr", "util_exact", "gain_exact", "util_padded",
                      "gain_padded"},
              csv);

  std::cout << "Observation: with padding allowed, large GEMM workloads fill "
               "the array and the RWL+RO gain collapses toward 1x —\nthe "
               "paper's reliability win is a property of realistic "
               "(divisor-constrained) schedules on misaligned layers.\n";
  return 0;
}
