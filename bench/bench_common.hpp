#pragma once

#include <string>
#include <vector>

#include "core/rota.hpp"

/// \file bench_common.hpp
/// Shared plumbing for the reproduction benches: section banners, the
/// standard table+CSV emission, and cached scheduling across the workload
/// zoo so each bench binary stays focused on its figure.

namespace rota::bench {

/// Print a banner naming the reproduced figure/table.
void banner(const std::string& experiment_id, const std::string& title);

/// Print a text table followed by the same rows as a CSV block.
void emit(const util::TextTable& table,
          const std::vector<std::string>& csv_header,
          const std::vector<std::vector<std::string>>& csv_rows);

/// Schedule every Table II workload on the given accelerator, reusing one
/// mapper so repeated shapes are searched once.
std::vector<sched::NetworkSchedule> schedule_all_workloads(
    const arch::AcceleratorConfig& cfg);

/// The three schemes compared throughout the paper's evaluation.
const std::vector<wear::PolicyKind>& paper_policies();

}  // namespace rota::bench
