#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/rota.hpp"

/// \file bench_common.hpp
/// Shared plumbing for the reproduction benches: section banners, the
/// standard table+CSV emission, cached scheduling across the workload
/// zoo, and machine-readable JSON output for CI regression tracking.

namespace rota::bench {

/// One measured benchmark: name plus per-iteration wall/CPU time.
struct BenchRecord {
  std::string name;
  double real_ms = 0.0;
  double cpu_ms = 0.0;
  std::int64_t iterations = 0;
};

/// Remove `--json FILE` (or `--json=FILE`) from argv before it reaches
/// benchmark::Initialize, returning the path ("" if absent). Falls back
/// to the ROTA_BENCH_JSON environment variable so CI can request JSON
/// without touching the command line.
std::string take_json_path(int& argc, char** argv);

/// Write `{"schema_version": N, "manifest": ..., "metrics": {name: {...}}}`
/// to `path` via the checked util::write_text_file (throws util::io_error
/// on failure). tools/bench_compare.py rejects envelopes whose
/// schema_version it does not understand.
void write_bench_json(const std::string& path, const obs::RunManifest& manifest,
                      const std::vector<BenchRecord>& records);

/// Print a banner naming the reproduced figure/table.
void banner(const std::string& experiment_id, const std::string& title);

/// Print a text table followed by the same rows as a CSV block.
void emit(const util::TextTable& table,
          const std::vector<std::string>& csv_header,
          const std::vector<std::vector<std::string>>& csv_rows);

/// Schedule every Table II workload on the given accelerator, reusing one
/// mapper so repeated shapes are searched once.
std::vector<sched::NetworkSchedule> schedule_all_workloads(
    const arch::AcceleratorConfig& cfg);

/// The three schemes compared throughout the paper's evaluation.
const std::vector<wear::PolicyKind>& paper_policies();

/// The run for `kind`, which must have been part of the experiment (the
/// benches always look up policies they just ran). Built on the
/// non-throwing ExperimentResult::find_run; aborts via ROTA_ENSURE on a
/// bench-harness bug instead of unwinding mid-report.
const PolicyRun& run_of(const ExperimentResult& result,
                        wear::PolicyKind kind);

}  // namespace rota::bench
