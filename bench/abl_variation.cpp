/// Ablation (beyond the paper): robustness of the Fig. 8 lifetime gains to
/// process variation. The paper treats the Weibull scale η as a shared
/// constant; real dies carry per-PE variation. Sampling η_ij lognormally
/// (same die for both schemes, common random numbers) yields a
/// distribution of the Eq. 4 ratio — its 5th-percentile is the guaranteed
/// gain a designer can quote.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace rota;
  using wear::PolicyKind;
  bench::banner("Ablation: process variation",
                "lifetime-improvement distribution under lognormal eta");

  util::TextTable table({"network", "sigma", "mean", "p05", "median",
                         "p95"});
  std::vector<std::vector<std::string>> csv;
  for (const char* abbr : {"Sqz", "YL", "Mb"}) {
    Experiment exp({arch::rota_like(), 300});
    const auto res = exp.run(nn::workload_by_abbr(abbr),
                             {PolicyKind::kBaseline, PolicyKind::kRwlRo});
    std::vector<double> base;
    std::vector<double> ro;
    for (auto v : bench::run_of(res, PolicyKind::kBaseline).usage.cells())
      base.push_back(static_cast<double>(v));
    for (auto v : bench::run_of(res, PolicyKind::kRwlRo).usage.cells())
      ro.push_back(static_cast<double>(v));

    for (double sigma : {0.0, 0.1, 0.2}) {
      const auto dist = rel::lifetime_improvement_under_variation(
          base, ro, rel::kJedecShape, sigma, 2000);
      table.add_row({abbr, util::fmt(sigma, 2), util::fmt(dist.mean, 3),
                     util::fmt(dist.p05, 3), util::fmt(dist.p50, 3),
                     util::fmt(dist.p95, 3)});
      csv.push_back({abbr, util::fmt(sigma, 2), util::fmt(dist.mean, 4),
                     util::fmt(dist.p05, 4), util::fmt(dist.p50, 4),
                     util::fmt(dist.p95, 4)});
    }
  }
  bench::emit(table, {"abbr", "sigma", "mean", "p05", "p50", "p95"}, csv);

  std::cout << "Observation: variation widens the distribution but the 5th "
               "percentile stays well above 1x —\nthe wear-leveling gain "
               "survives realistic per-PE scale spread.\n";
  return 0;
}
