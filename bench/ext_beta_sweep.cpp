/// Extension: sensitivity of the lifetime improvement to the Weibull
/// shape parameter β. The paper fixes β = 3.4 (JEDEC JEP122H); different
/// wear-out mechanisms report shapes from ~1 (random) to ~5 (tightly
/// clustered wear-out). Both the Eq. 4 ratio and its §V-C upper bound
/// utilization^(1/β−1) grow with β, so the paper's choice is on the
/// conservative side of the wear-out range.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace rota;
  using wear::PolicyKind;
  bench::banner("Extension: beta sensitivity",
                "RWL+RO gain vs Weibull shape (SqueezeNet x300)");

  // Usage fields are β-independent; compute them once.
  Experiment exp({arch::rota_like(), 300});
  const auto res = exp.run(nn::make_squeezenet(),
                           {PolicyKind::kBaseline, PolicyKind::kRwlRo});
  std::vector<double> base;
  std::vector<double> ro;
  for (auto v : bench::run_of(res, PolicyKind::kBaseline).usage.cells())
    base.push_back(static_cast<double>(v));
  for (auto v : bench::run_of(res, PolicyKind::kRwlRo).usage.cells())
    ro.push_back(static_cast<double>(v));
  const double util_mean = res.schedule.mean_utilization();

  util::TextTable table({"beta", "RWL+RO gain", "bound at mean util"});
  std::vector<std::vector<std::string>> csv;
  for (double beta : {1.0, 1.5, 2.0, 2.5, 3.0, 3.4, 4.0, 5.0}) {
    const double gain = rel::lifetime_improvement(base, ro, beta);
    const double bound = rel::perfect_wl_upper_bound(util_mean, beta);
    table.add_row({util::fmt(beta, 1), util::fmt(gain, 3) + "x",
                   util::fmt(bound, 3) + "x"});
    csv.push_back({util::fmt(beta, 1), util::fmt(gain, 4),
                   util::fmt(bound, 4)});
  }
  bench::emit(table, {"beta", "gain", "bound"}, csv);

  std::cout << "Observation: the gain rises monotonically with beta (more "
               "deterministic wear-out rewards leveling more);\nat the "
               "JEDEC beta = 3.4 the paper reports a representative, "
               "mildly conservative figure.\n";
  return 0;
}
