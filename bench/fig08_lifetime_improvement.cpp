/// Reproduces Fig. 8: relative lifetime of Baseline / RWL-only / RWL+RO
/// for every Table II workload after 1,000 inference iterations (Eq. 4,
/// Weibull β = 3.4). Paper: RWL+RO averages 1.69x, RWL-only 1.65x; the
/// lightweight networks (Mb, Eff, MVT) show the visible RWL↔RWL+RO gap,
/// and YOLOv3 — the lowest-utilization workload — gains the most.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace rota;
  using wear::PolicyKind;
  bench::banner("Fig. 8", "relative lifetime per workload, 1,000 iterations");

  util::TextTable table({"network", "abbr", "mean util", "Baseline", "RWL",
                         "RWL+RO"});
  std::vector<std::vector<std::string>> csv;
  double rwl_sum = 0.0;
  double ro_sum = 0.0;
  double small_rwl_sum = 0.0;
  double small_ro_sum = 0.0;
  int count = 0;
  int small_count = 0;
  std::string best_abbr;
  double best_gain = 0.0;

  for (const auto& net : nn::all_workloads()) {
    Experiment exp({arch::rota_like(), 1000});
    const auto res = exp.run(net, bench::paper_policies());
    const double rwl = res.improvement_over_baseline(PolicyKind::kRwl);
    const double ro = res.improvement_over_baseline(PolicyKind::kRwlRo);
    rwl_sum += rwl;
    ro_sum += ro;
    ++count;
    const bool lightweight = net.abbr() == "Mb" || net.abbr() == "Eff" ||
                             net.abbr() == "MVT";
    if (lightweight) {
      small_rwl_sum += rwl;
      small_ro_sum += ro;
      ++small_count;
    }
    if (ro > best_gain) {
      best_gain = ro;
      best_abbr = net.abbr();
    }
    table.add_row({net.name(), net.abbr(),
                   util::fmt_pct(res.schedule.mean_utilization()), "1.00x",
                   util::fmt(rwl, 2) + "x", util::fmt(ro, 2) + "x"});
    csv.push_back({net.abbr(), util::fmt(res.schedule.mean_utilization(), 4),
                   util::fmt(rwl, 4), util::fmt(ro, 4)});
  }
  bench::emit(table, {"abbr", "mean_util", "rwl", "rwl_ro"}, csv);

  std::cout << "average over the zoo: RWL = "
            << util::fmt(rwl_sum / count, 2) << "x, RWL+RO = "
            << util::fmt(ro_sum / count, 2)
            << "x   (paper: 1.65x / 1.69x)\n";
  std::cout << "lightweight networks (Mb, Eff, MVT): RWL = "
            << util::fmt(small_rwl_sum / small_count, 2) << "x, RWL+RO = "
            << util::fmt(small_ro_sum / small_count, 2)
            << "x   (paper: 1.46x / 1.55x)\n";
  std::cout << "largest gain: " << best_abbr << " at "
            << util::fmt(best_gain, 2)
            << "x   (paper: YOLOv3 at 2.37x, its lowest-utilization "
               "workload)\n";
  return 0;
}
