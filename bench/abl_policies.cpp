/// Ablation (beyond the paper): alternative anchoring policies against the
/// paper's RWL+RO. On a real workload (SqueezeNet), RandomStart levels
/// only in expectation and keeps a random-walk usage spread, while
/// DiagonalStride happens to level well because the workload's space
/// shapes are co-prime enough with the array. The second table shows
/// DiagonalStride's failure mode: on stride-aligned geometry (x | w,
/// y | h) it visits only the diagonal origin sub-lattice and leaves whole
/// quadrants of the array cold — band-major rotation has no such cliff.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace rota;
  using wear::PolicyKind;
  bench::banner("Ablation: policies",
                "RWL+RO vs RandomStart vs DiagonalStride (SqueezeNet x300)");

  Experiment exp({arch::rota_like(), 300});
  const auto res = exp.run(
      nn::make_squeezenet(),
      {PolicyKind::kBaseline, PolicyKind::kRwl, PolicyKind::kRwlRo,
       PolicyKind::kRandomStart, PolicyKind::kDiagonalStride});

  util::TextTable table({"policy", "lifetime vs baseline", "D_max",
                         "R_diff"});
  std::vector<std::vector<std::string>> csv;
  for (const auto& run : res.runs) {
    const double gain = res.improvement_over_baseline(run.kind);
    table.add_row({run.policy_name, util::fmt(gain, 3) + "x",
                   std::to_string(run.stats.max_diff),
                   util::fmt(run.stats.r_diff, 4)});
    csv.push_back({run.policy_name, util::fmt(gain, 4),
                   std::to_string(run.stats.max_diff),
                   util::fmt(run.stats.r_diff, 5)});
  }
  bench::emit(table, {"policy", "lifetime", "d_max", "r_diff"}, csv);

  bench::banner("Ablation: aligned geometry",
                "12x12 array, one 6x6-space layer, 400 tiles/iteration x50");
  arch::AcceleratorConfig cfg = arch::rota_like();
  cfg.array_width = 12;
  cfg.array_height = 12;
  sched::NetworkSchedule ns;
  ns.network_name = "aligned";
  ns.network_abbr = "al";
  ns.config = cfg;
  sched::LayerSchedule layer;
  layer.layer_name = "l0";
  layer.space = {6, 6};
  layer.tiles = 400;
  ns.layers.push_back(layer);

  util::TextTable aligned({"policy", "min(A_PE)", "D_max", "R_diff"});
  std::vector<std::vector<std::string>> acsv;
  for (PolicyKind kind : {PolicyKind::kRwlRo, PolicyKind::kDiagonalStride,
                          PolicyKind::kRandomStart}) {
    wear::WearSimulator sim(cfg);
    auto policy = wear::make_policy(kind, 12, 12);
    sim.run_iterations(ns, *policy, 50);
    const auto st = sim.tracker().stats();
    aligned.add_row({wear::to_string(kind), std::to_string(st.min),
                     std::to_string(st.max_diff), util::fmt(st.r_diff, 4)});
    acsv.push_back({wear::to_string(kind), std::to_string(st.min),
                    std::to_string(st.max_diff), util::fmt(st.r_diff, 5)});
  }
  bench::emit(aligned, {"policy", "min_a_pe", "d_max", "r_diff"}, acsv);

  std::cout << "Observations: on SqueezeNet all torus policies approach the "
               "same lifetime, but RandomStart keeps a\nrandom-walk D_max "
               "spread. On aligned geometry DiagonalStride leaves quadrants "
               "completely unused\n(min(A_PE) = 0 — as bad as the baseline), "
               "while band-major RWL+RO still levels perfectly.\n";
  return 0;
}
