/// Extension: multi-network deployment. §IV-D states the RO stride state
/// is relayed "across neural layers and networks" — the inference-server
/// scenario where one accelerator alternates between models. This bench
/// interleaves three lightweight networks for 900 total network-runs and
/// shows RWL+RO keeps the usage difference bounded across model switches,
/// while per-layer RWL (which resets at every layer) accumulates residue
/// exactly as it does on a single model.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace rota;
  using wear::PolicyKind;
  bench::banner("Extension: multi-network serving",
                "Sqz -> Mb -> Eff round-robin, 300 rounds");

  ExperimentConfig cfg;
  cfg.iterations = 300;  // one iteration = one pass over the whole mix
  Experiment exp(cfg);
  const std::vector<nn::Network> mix = {nn::make_squeezenet(),
                                        nn::make_mobilenet_v3(),
                                        nn::make_efficientnet_b0()};
  const auto res = exp.run_mix(mix, bench::paper_policies());

  util::TextTable table({"policy", "lifetime vs baseline", "D_max",
                         "R_diff"});
  std::vector<std::vector<std::string>> csv;
  for (const auto& run : res.runs) {
    const double gain = res.improvement_over_baseline(run.kind);
    table.add_row({run.policy_name, util::fmt(gain, 3) + "x",
                   std::to_string(run.stats.max_diff),
                   util::fmt(run.stats.r_diff, 4)});
    csv.push_back({run.policy_name, util::fmt(gain, 4),
                   std::to_string(run.stats.max_diff)});
  }
  bench::emit(table, {"policy", "lifetime", "d_max"}, csv);

  std::cout << "Observation: model switches are just more layer "
               "transitions to RO — the stride state relays through\nthem "
               "and the usage difference stays bounded, exactly as §IV-D "
               "claims for \"layers and networks\".\n";
  return 0;
}
