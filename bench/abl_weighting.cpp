/// Ablation (beyond the paper): sensitivity of the lifetime conclusions to
/// the wear metric. The paper counts utilization-space *allocations*
/// (A_PE, Table I); real wear-out mechanisms track *active time*. This
/// bench repeats the Fig. 8 comparison with each allocation weighted by
/// the tile's per-PE busy cycles and shows the improvement factors move
/// only modestly — the conclusion does not hinge on the accounting choice.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace rota;
  using wear::PolicyKind;
  bench::banner("Ablation: wear metric",
                "allocation-counted vs active-cycle-weighted wear");

  util::TextTable table({"network", "RWL+RO gain (allocations)",
                         "RWL+RO gain (active cycles)", "delta"});
  std::vector<std::vector<std::string>> csv;
  for (const char* abbr : {"Res", "YL", "Sqz", "Mb", "VT"}) {
    const nn::Network net = nn::workload_by_abbr(abbr);

    ExperimentConfig alloc_cfg;
    alloc_cfg.iterations = 300;
    alloc_cfg.metric = wear::WearMetric::kAllocations;
    Experiment alloc_exp(alloc_cfg);
    const auto alloc_res =
        alloc_exp.run(net, {PolicyKind::kBaseline, PolicyKind::kRwlRo});
    const double alloc_gain =
        alloc_res.improvement_over_baseline(PolicyKind::kRwlRo);

    ExperimentConfig cyc_cfg = alloc_cfg;
    cyc_cfg.metric = wear::WearMetric::kActiveCycles;
    Experiment cyc_exp(cyc_cfg);
    const auto cyc_res =
        cyc_exp.run(net, {PolicyKind::kBaseline, PolicyKind::kRwlRo});
    const double cyc_gain =
        cyc_res.improvement_over_baseline(PolicyKind::kRwlRo);

    table.add_row({abbr, util::fmt(alloc_gain, 3) + "x",
                   util::fmt(cyc_gain, 3) + "x",
                   util::fmt_pct(cyc_gain / alloc_gain - 1.0)});
    csv.push_back({abbr, util::fmt(alloc_gain, 4), util::fmt(cyc_gain, 4)});
  }
  bench::emit(table, {"abbr", "gain_allocations", "gain_active_cycles"}, csv);

  std::cout << "Observation: weighting allocations by per-PE busy cycles "
               "re-balances which layers dominate the wear field,\nbut "
               "wear-leveling keeps a large lifetime advantage under either "
               "metric.\n";
  return 0;
}
