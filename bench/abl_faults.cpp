/// Ablation (beyond the paper): wear leveling under injected PE faults.
/// The paper's lifetime model assumes every PE survives until wear-out;
/// this bench kills PEs mid-run (Weibull-sampled fault times, seeded) and
/// routes their work through the spare pool via rel::SpareRemapper. It
/// reports, per fault burden and spare-pool size, how much work the
/// spares absorb, how much is lost once the pool exhausts, and how far
/// MTTF degrades relative to the same run with its pool intact — the
/// operational cost of faults that the analytic k-out-of-n model hides.

#include <iostream>

#include "bench_common.hpp"
#include "fi/inject.hpp"
#include "sched/mapper.hpp"

int main() {
  using namespace rota;
  bench::banner("Ablation: faults",
                "degraded MTTF and remap overhead vs fault burden "
                "(SqueezeNet x256, RWL+RO)");

  const arch::AcceleratorConfig cfg = arch::rota_like();
  const nn::Network net = nn::make_squeezenet();
  sched::Mapper mapper(cfg, sched::ObjectiveSpec{}, {},
                       sched::MapperOptions{true, 0});
  const sched::NetworkSchedule schedule = mapper.schedule_network(net);

  util::TextTable table({"faults", "spares", "redirected", "lost units",
                         "migrations", "degraded MTTF"});
  std::vector<std::vector<std::string>> csv;
  for (const std::int64_t faults : {1, 2, 4, 8}) {
    for (const std::int64_t spares : {2, 4, 8}) {
      fi::InjectOptions options;
      options.iterations = 256;
      options.spares = spares;
      options.seed = 0x526f5441;
      options.faults.push_back(
          fi::parse_hardware_fault("weibull=" + std::to_string(faults))
              .take());

      auto policy = wear::make_policy(wear::PolicyKind::kRwlRo,
                                      cfg.array_width, cfg.array_height,
                                      options.seed);
      const fi::FaultRunReport report =
          fi::run_fault_injection(cfg, schedule, *policy, options);

      table.add_row({std::to_string(faults), std::to_string(spares),
                     util::fmt_pct(report.redirect_fraction, 2),
                     std::to_string(report.lost_units),
                     std::to_string(report.spare_stats.migrations),
                     util::fmt(report.mttf_ratio, 3) + "x"});
      csv.push_back({std::to_string(faults), std::to_string(spares),
                     util::fmt(report.redirect_fraction, 4),
                     std::to_string(report.lost_units),
                     std::to_string(report.spare_stats.migrations),
                     util::fmt(report.mttf_ratio, 4)});
    }
  }
  bench::emit(table,
              {"faults", "spares", "redirect_fraction", "lost_units",
               "migrations", "degraded_mttf_ratio"},
              csv);

  std::cout << "Observation: a generous pool keeps early faults cheap "
               "(one fault, eight spares: ~4% MTTF loss)\nbecause spares "
               "start unworn, but every in-service spare carries its "
               "primary's full load, so the\nratio falls steadily as "
               "faults mount; an undersized pool (two spares, four-plus "
               "faults) exhausts\nand strands work outright.\n";
  return 0;
}
