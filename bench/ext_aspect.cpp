/// Extension: does the array's aspect ratio matter? At a constant PE
/// budget (~168 PEs, the Eyeriss count), wide, square and tall arrays
/// present different divisor structure to the same layers, which moves
/// both the utilization and the wear-leveling headroom. Useful when
/// choosing array geometry for a reliability-critical design.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace rota;
  using wear::PolicyKind;
  bench::banner("Extension: aspect ratio",
                "~168-PE arrays of different shapes (SqueezeNet x500)");

  struct Shape {
    std::int64_t w;
    std::int64_t h;
  };
  const Shape shapes[] = {{28, 6}, {24, 7}, {21, 8}, {14, 12},
                          {12, 14}, {8, 21}, {6, 28}};

  util::TextTable table({"array", "PEs", "mean util", "RWL+RO gain",
                         "D_max @500"});
  std::vector<std::vector<std::string>> csv;
  const nn::Network net = nn::make_squeezenet();
  for (const Shape& s : shapes) {
    ExperimentConfig cfg;
    cfg.accel = arch::rota_like();
    cfg.accel.array_width = s.w;
    cfg.accel.array_height = s.h;
    cfg.iterations = 500;
    Experiment exp(cfg);
    const auto res = exp.run(net, {PolicyKind::kBaseline,
                                   PolicyKind::kRwlRo});
    const double gain = res.improvement_over_baseline(PolicyKind::kRwlRo);
    const auto& st = bench::run_of(res, PolicyKind::kRwlRo).stats;
    const std::string dim = std::to_string(s.w) + "x" + std::to_string(s.h);
    table.add_row({dim, std::to_string(s.w * s.h),
                   util::fmt_pct(res.schedule.mean_utilization()),
                   util::fmt(gain, 2) + "x", std::to_string(st.max_diff)});
    csv.push_back({dim, util::fmt(res.schedule.mean_utilization(), 4),
                   util::fmt(gain, 4), std::to_string(st.max_diff)});
  }
  bench::emit(table, {"array", "mean_util", "gain", "d_max"}, csv);

  std::cout << "Observation: at a fixed PE budget the divisor structure of "
               "the geometry moves utilization by tens of\npercent and the "
               "wear-leveling gain with it — geometry is a reliability "
               "knob, not just a floorplanning one.\n";
  return 0;
}
