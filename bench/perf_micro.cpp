/// Micro-benchmarks of the library itself (google-benchmark): mapper
/// search throughput, wear-simulation throughput with and without the
/// periodicity fast-forward, usage-tracker placement rate, and the
/// reliability evaluation. These guard the tool's interactive usability
/// rather than reproducing a paper figure.
///
/// Pass `--json BENCH_perf.json` (or set ROTA_BENCH_JSON) to also emit a
/// machine-readable {"manifest", "metrics"} report for CI regression
/// tracking; all other flags go straight to google-benchmark.

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/rota.hpp"
#include "kern/kern.hpp"
#include "obs/event_log.hpp"
#include "util/rng.hpp"

namespace {

using namespace rota;

void BM_MapperScheduleLayer(benchmark::State& state) {
  const auto layer = nn::conv("c", 512, 512, 7, 3, 1);
  for (auto _ : state) {
    // fresh mapper each iteration: defeat the cache
    sched::Mapper mapper(arch::eyeriss_like(), sched::ObjectiveSpec{});
    benchmark::DoNotOptimize(mapper.schedule_layer(layer));
  }
}
BENCHMARK(BM_MapperScheduleLayer)->Unit(benchmark::kMillisecond);

void BM_MapperScheduleSqueezeNet(benchmark::State& state) {
  const auto net = nn::make_squeezenet();
  for (auto _ : state) {
    sched::Mapper mapper(arch::eyeriss_like(), sched::ObjectiveSpec{});
    benchmark::DoNotOptimize(mapper.schedule_network(net));
  }
}
BENCHMARK(BM_MapperScheduleSqueezeNet)->Unit(benchmark::kMillisecond);

void BM_MapperDivisors(benchmark::State& state) {
  // Divisor-heavy shape: 960 and 512 channels have long divisor ladders,
  // so this isolates the per-search divisor memo and ladder hoisting.
  const auto layer = nn::conv("d", 960, 512, 14, 3, 1);
  for (auto _ : state) {
    // fresh mapper each iteration: defeat the cache
    sched::Mapper mapper(arch::eyeriss_like(), sched::ObjectiveSpec{});
    benchmark::DoNotOptimize(mapper.schedule_layer(layer));
  }
}
BENCHMARK(BM_MapperDivisors)->Unit(benchmark::kMillisecond);

void BM_ParetoSearch(benchmark::State& state) {
  // Full multi-objective front + weighted scalarization over a network,
  // against BM_MapperScheduleSqueezeNet (the single-objective argmin) to
  // price what `rota pareto` pays for keeping the whole front. Arg(1)
  // adds a two-dead-PE ArrayState so the degraded feasibility/anchor
  // path is timed too.
  const auto net = nn::make_squeezenet();
  const arch::AcceleratorConfig accel = arch::eyeriss_like();
  sched::ArrayState array_state;
  if (state.range(0) != 0) {
    array_state =
        sched::ArrayState(accel.array_width, accel.array_height,
                          {{3, 3}, {10, 2}});
  }
  for (auto _ : state) {
    sched::Mapper mapper(accel, sched::ObjectiveSpec::weighted(0.2, 0.7, 0.1),
                         {}, {}, array_state);
    benchmark::DoNotOptimize(mapper.pareto_network(net));
  }
  state.SetLabel(state.range(0) != 0 ? "degraded" : "all-live");
}
BENCHMARK(BM_ParetoSearch)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_MapperScheduleSqueezeNetPar(benchmark::State& state) {
  const auto net = nn::make_squeezenet();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sched::Mapper mapper(arch::eyeriss_like(), sched::ObjectiveSpec{}, {},
                         sched::MapperOptions{true, threads});
    benchmark::DoNotOptimize(mapper.schedule_network(net));
  }
}
BENCHMARK(BM_MapperScheduleSqueezeNetPar)
    ->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_MonteCarloMttfPar(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  std::vector<double> alphas(168);
  for (std::size_t i = 0; i < alphas.size(); ++i)
    alphas[i] = 1.0 + static_cast<double>(i % 7);
  // 8 chunks of rel::kMonteCarloChunkTrials, so every lane count divides
  // the work evenly and the result is identical across the Arg sweep.
  const std::int64_t trials = 8 * rel::kMonteCarloChunkTrials;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rel::monte_carlo_mttf(alphas, 2.0, 1.0, trials, 0x526f5441, threads));
  }
}
BENCHMARK(BM_MonteCarloMttfPar)
    ->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

/// Pin the dispatch to one ISA for the duration of a benchmark run and
/// restore the previous choice afterwards. Skips (rather than fails) when
/// the requested ISA is not available in this binary on this CPU.
class IsaPin {
 public:
  IsaPin(benchmark::State& state, kern::Isa isa)
      : previous_(kern::active_isa()) {
    if (isa == kern::Isa::kAvx2 && !kern::avx2_available()) {
      state.SkipWithError("AVX2 path not available");
      skipped_ = true;
      return;
    }
    kern::force_isa(isa);
  }
  ~IsaPin() {
    if (!skipped_) kern::force_isa(previous_);
  }
  [[nodiscard]] bool skipped() const { return skipped_; }

 private:
  kern::Isa previous_;
  bool skipped_ = false;
};

/// The Weibull serial-reliability reduction in isolation: one Monte Carlo
/// trial's min over 168 per-PE failure draws, in the β-power domain the
/// sampler uses (DESIGN.md §14). scalar-vs-simd pairs quantify what the
/// dispatch actually buys on this machine.
void BM_WeibullReduce(benchmark::State& state, kern::Isa isa) {
  const IsaPin pin(state, isa);
  if (pin.skipped()) return;
  constexpr std::size_t kPe = 168;
  std::vector<double> c_pow(kPe);
  std::vector<double> u(kPe);
  util::SplitMix64 rng(0x526f5441);
  for (std::size_t i = 0; i < kPe; ++i) {
    c_pow[i] = 1.0 + static_cast<double>(i % 7);
    u[i] = rng.next_double();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        kern::pow1(kern::weibull_min(u.data(), c_pow.data(), kPe), 0.5));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPe));
}
BENCHMARK_CAPTURE(BM_WeibullReduce, scalar, kern::Isa::kScalar);
BENCHMARK_CAPTURE(BM_WeibullReduce, simd, kern::Isa::kAvx2);

/// The wear-accumulation inner passes in isolation: the vertical
/// row-plus-row and uniform-offset sweeps of UsageTracker::materialize
/// over a 168-PE array's worth of rows.
void BM_WearAccumulate(benchmark::State& state, kern::Isa isa) {
  const IsaPin pin(state, isa);
  if (pin.skipped()) return;
  constexpr std::size_t kW = 14;
  constexpr std::size_t kH = 12;
  std::vector<std::int64_t> cells(kW * kH, 1);
  for (auto _ : state) {
    for (std::size_t r = 1; r < kH; ++r) {
      kern::add_i64(cells.data() + r * kW, cells.data() + (r - 1) * kW, kW);
    }
    kern::add_scalar_i64(cells.data(), 3, cells.size());
    benchmark::DoNotOptimize(kern::minmax_sum_i64(cells.data(), cells.size()));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(cells.size()));
}
BENCHMARK_CAPTURE(BM_WearAccumulate, scalar, kern::Isa::kScalar);
BENCHMARK_CAPTURE(BM_WearAccumulate, simd, kern::Isa::kAvx2);

void BM_TrackerAddSpaceWrapped(benchmark::State& state) {
  wear::UsageTracker tracker(14, 12);
  std::int64_t u = 0;
  for (auto _ : state) {
    tracker.add_space(u, (u * 5) % 12, 8, 8, 1, true);
    u = (u + 3) % 14;
  }
  benchmark::DoNotOptimize(tracker);
}
BENCHMARK(BM_TrackerAddSpaceWrapped);

void BM_WearIterationFastForward(benchmark::State& state) {
  const bool fast = state.range(0) != 0;
  sched::Mapper mapper(arch::rota_like(), sched::ObjectiveSpec{});
  const auto ns = mapper.schedule_network(nn::make_squeezenet());
  for (auto _ : state) {
    wear::WearSimulator sim(arch::rota_like(), wear::SimulatorOptions{fast});
    auto policy = wear::make_policy(wear::PolicyKind::kRwlRo, 14, 12);
    sim.run_iterations(ns, *policy, 10);
    benchmark::DoNotOptimize(sim.tracker());
  }
  state.SetLabel(fast ? "fast-forward" : "per-tile");
}
BENCHMARK(BM_WearIterationFastForward)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

void BM_LifetimeImprovement(benchmark::State& state) {
  std::vector<double> base(168);
  std::vector<double> wl(168);
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = static_cast<double>(i % 7);
    wl[i] = 3.0 + static_cast<double>(i % 2);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel::lifetime_improvement(base, wl));
  }
}
BENCHMARK(BM_LifetimeImprovement);

void BM_ExperimentSqueezeNet100(benchmark::State& state) {
  const auto net = nn::make_squeezenet();
  for (auto _ : state) {
    Experiment exp({arch::rota_like(), 100});
    benchmark::DoNotOptimize(exp.run(net, {wear::PolicyKind::kBaseline,
                                           wear::PolicyKind::kRwlRo}));
  }
}
BENCHMARK(BM_ExperimentSqueezeNet100)->Unit(benchmark::kMillisecond);

void BM_ExperimentSqueezeNet100Par(benchmark::State& state) {
  const auto net = nn::make_squeezenet();
  const int threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ExperimentConfig cfg{arch::rota_like(), 100};
    cfg.threads = threads;
    Experiment exp(cfg);
    benchmark::DoNotOptimize(exp.run(net, {wear::PolicyKind::kBaseline,
                                           wear::PolicyKind::kRwl,
                                           wear::PolicyKind::kRwlRo,
                                           wear::PolicyKind::kRandomStart}));
  }
}
BENCHMARK(BM_ExperimentSqueezeNet100Par)
    ->Arg(1)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

// Disabled-observability cost gate: with no sinks armed, a metric update
// and an event-log call must each stay one relaxed atomic load + branch,
// so the hot paths they instrument (svc request handling, the wear inner
// loops) pay nothing when telemetry is off. A regression here shows up as
// these going from ~1 ns to lock-acquisition territory.
void BM_ObsDisabledCounter(benchmark::State& state) {
  auto& reg = obs::MetricsRegistry::global();
  reg.set_enabled(false);
  for (auto _ : state) {
    reg.add("bench.disabled_counter");
    reg.observe("bench.disabled_hist", 1.0);
    reg.gauge("bench.disabled_gauge", 1.0);
  }
}
BENCHMARK(BM_ObsDisabledCounter);

void BM_ObsDisabledEventLog(benchmark::State& state) {
  auto& events = obs::EventLog::global();
  events.set_enabled(false);
  for (auto _ : state) {
    obs::log_event(obs::Severity::kInfo, "bench", "disabled event");
  }
}
BENCHMARK(BM_ObsDisabledEventLog);

/// Console reporter that also captures per-iteration timings so main can
/// write the machine-readable BENCH_perf.json after the run.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const auto& run : runs) {
      if (run.error_occurred || run.run_type == Run::RT_Aggregate) continue;
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      rota::bench::BenchRecord rec;
      rec.name = run.benchmark_name();
      rec.real_ms = run.real_accumulated_time / iters * 1e3;
      rec.cpu_ms = run.cpu_accumulated_time / iters * 1e3;
      rec.iterations = run.iterations;
      records.push_back(rec);
    }
    ConsoleReporter::ReportRuns(runs);
  }

  std::vector<rota::bench::BenchRecord> records;
};

}  // namespace

int main(int argc, char** argv) {
  std::string command = "perf_micro";
  for (int i = 1; i < argc; ++i) command += std::string(" ") + argv[i];
  const std::string json_path = rota::bench::take_json_path(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  rota::obs::RunManifest manifest =
      rota::obs::make_run_manifest("perf_micro", command);
  const auto t0 = std::chrono::steady_clock::now();
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  if (!json_path.empty()) {
    manifest.workload = "micro";
    manifest.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    rota::bench::write_bench_json(json_path, manifest, reporter.records);
    std::cout << "wrote " << json_path << " (" << reporter.records.size()
              << " benchmarks)\n";
  }
  return 0;
}
