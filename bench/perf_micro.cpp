/// Micro-benchmarks of the library itself (google-benchmark): mapper
/// search throughput, wear-simulation throughput with and without the
/// periodicity fast-forward, usage-tracker placement rate, and the
/// reliability evaluation. These guard the tool's interactive usability
/// rather than reproducing a paper figure.

#include <benchmark/benchmark.h>

#include "core/rota.hpp"

namespace {

using namespace rota;

void BM_MapperScheduleLayer(benchmark::State& state) {
  const auto layer = nn::conv("c", 512, 512, 7, 3, 1);
  for (auto _ : state) {
    sched::Mapper mapper(arch::eyeriss_like());  // fresh: defeat the cache
    benchmark::DoNotOptimize(mapper.schedule_layer(layer));
  }
}
BENCHMARK(BM_MapperScheduleLayer)->Unit(benchmark::kMillisecond);

void BM_MapperScheduleSqueezeNet(benchmark::State& state) {
  const auto net = nn::make_squeezenet();
  for (auto _ : state) {
    sched::Mapper mapper(arch::eyeriss_like());
    benchmark::DoNotOptimize(mapper.schedule_network(net));
  }
}
BENCHMARK(BM_MapperScheduleSqueezeNet)->Unit(benchmark::kMillisecond);

void BM_TrackerAddSpaceWrapped(benchmark::State& state) {
  wear::UsageTracker tracker(14, 12);
  std::int64_t u = 0;
  for (auto _ : state) {
    tracker.add_space(u, (u * 5) % 12, 8, 8, 1, true);
    u = (u + 3) % 14;
  }
  benchmark::DoNotOptimize(tracker);
}
BENCHMARK(BM_TrackerAddSpaceWrapped);

void BM_WearIterationFastForward(benchmark::State& state) {
  const bool fast = state.range(0) != 0;
  sched::Mapper mapper(arch::rota_like());
  const auto ns = mapper.schedule_network(nn::make_squeezenet());
  for (auto _ : state) {
    wear::WearSimulator sim(arch::rota_like(), wear::SimulatorOptions{fast});
    auto policy = wear::make_policy(wear::PolicyKind::kRwlRo, 14, 12);
    sim.run_iterations(ns, *policy, 10);
    benchmark::DoNotOptimize(sim.tracker());
  }
  state.SetLabel(fast ? "fast-forward" : "per-tile");
}
BENCHMARK(BM_WearIterationFastForward)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

void BM_LifetimeImprovement(benchmark::State& state) {
  std::vector<double> base(168);
  std::vector<double> wl(168);
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = static_cast<double>(i % 7);
    wl[i] = 3.0 + static_cast<double>(i % 2);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(rel::lifetime_improvement(base, wl));
  }
}
BENCHMARK(BM_LifetimeImprovement);

void BM_ExperimentSqueezeNet100(benchmark::State& state) {
  const auto net = nn::make_squeezenet();
  for (auto _ : state) {
    Experiment exp({arch::rota_like(), 100});
    benchmark::DoNotOptimize(exp.run(net, {wear::PolicyKind::kBaseline,
                                           wear::PolicyKind::kRwlRo}));
  }
}
BENCHMARK(BM_ExperimentSqueezeNet100)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
