/// Reproduces §V-D: design and scheduling overhead of RoTA. (1) The area
/// roll-up of the torus-connected PE array versus the mesh baseline —
/// the paper's SAED-32nm synthesis reports 0.3%; (2) the wear-leveling
/// logic cost (four registers + two circular counters); (3) the zero
/// performance penalty: identical execution cycles on mesh and torus, with
/// the (u, v) counter update hidden under every tile's compute phase.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace rota;
  bench::banner("Sec. V-D (area)", "torus design overhead vs mesh baseline");

  const arch::AreaModel model;
  const arch::AcceleratorConfig mesh = arch::eyeriss_like();
  arch::AcceleratorConfig torus = arch::rota_like();

  const arch::AreaBreakdown mb = model.breakdown(mesh, false);
  const arch::AreaBreakdown tb = model.breakdown(torus, true);

  util::TextTable table({"component", "mesh (um^2)", "torus+WL (um^2)"});
  auto row = [&](const char* name, double a, double b) {
    table.add_row({name, util::fmt(a, 0), util::fmt(b, 0)});
  };
  row("PE array (MAC+LB+ctrl)", mb.pe_array, tb.pe_array);
  row("local network", mb.local_network, tb.local_network);
  row("global buffer", mb.glb, tb.glb);
  row("global network", mb.global_network, tb.global_network);
  row("controller (+WL logic)", mb.controller, tb.controller);
  row("total", mb.total(), tb.total());
  std::cout << table.str() << '\n';

  const double array_ovh = model.array_overhead_fraction(mesh);
  const double chip_ovh = model.chip_overhead_fraction(mesh);
  std::cout << "PE-array overhead (paper's ratio): "
            << util::fmt_pct(array_ovh, 2) << "   (paper: 0.3%)\n"
            << "whole-chip overhead incl. WL logic: "
            << util::fmt_pct(chip_ovh, 2) << "\n\n";

  const arch::Topology folded(arch::TopologyKind::kTorus2D, 14, 12,
                              arch::TorusLayout::kFolded);
  const arch::Topology naive(arch::TopologyKind::kTorus2D, 14, 12,
                             arch::TorusLayout::kNaiveLoopback);
  std::cout << "longest physical link (PE pitches): folded torus = "
            << folded.link_stats().max_length_pitches
            << ", naive loop-back torus = "
            << naive.link_stats().max_length_pitches
            << "  (the zigzag layout removes long wires, Fig. 1 note)\n";

  bench::banner("Sec. V-D (cycles)",
                "no performance degradation from RWL+RO");
  sched::Mapper mapper(mesh, sched::ObjectiveSpec{});
  const sim::ExecutionEngine mesh_engine(mesh);
  const sim::ExecutionEngine torus_engine(torus);

  util::TextTable cyc({"workload", "mesh cycles", "torus+RWL+RO cycles",
                       "delta", "ctrl update hidden"});
  std::vector<std::vector<std::string>> csv;
  for (const char* abbr : {"Res", "Sqz", "Mb", "Eff", "VT"}) {
    const auto ns = mapper.schedule_network(nn::workload_by_abbr(abbr));
    const double cm = mesh_engine.network_cycles(ns);
    const double ct = torus_engine.network_cycles(ns);
    bool hidden = true;
    for (const auto& l : ns.layers)
      hidden = hidden && torus_engine.estimate_layer(l).controller_update_hidden;
    cyc.add_row({abbr, util::fmt(cm, 0), util::fmt(ct, 0),
                 util::fmt(ct - cm, 0), hidden ? "yes" : "NO"});
    csv.push_back({abbr, util::fmt(cm, 0), util::fmt(ct, 0),
                   hidden ? "1" : "0"});
  }
  bench::emit(cyc, {"abbr", "mesh_cycles", "torus_cycles", "hidden"}, csv);
  std::cout << "Shape check: delta = 0 for every workload — the counter "
               "update overlaps tile processing (paper: no performance "
               "degradation).\n";
  return 0;
}
