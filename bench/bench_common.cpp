#include "bench_common.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

#include "obs/json.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"
#include "util/io.hpp"

namespace rota::bench {

std::string take_json_path(int& argc, char** argv) {
  std::string path;
  int write = 1;
  for (int read = 1; read < argc; ++read) {
    const std::string arg = argv[read];
    if (arg == "--json" && read + 1 < argc) {
      path = argv[++read];
    } else if (arg.rfind("--json=", 0) == 0) {
      path = arg.substr(7);
    } else {
      argv[write++] = argv[read];
    }
  }
  argc = write;
  if (path.empty()) {
    if (const char* env = std::getenv("ROTA_BENCH_JSON")) path = env;
  }
  return path;
}

void write_bench_json(const std::string& path, const obs::RunManifest& manifest,
                      const std::vector<BenchRecord>& records) {
  std::ostringstream out;
  out << "{\"schema_version\":" << obs::kSchemaVersion
      << ",\"manifest\":" << manifest.to_json() << ",\"metrics\":{";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchRecord& rec = records[i];
    if (i != 0) out << ',';
    out << obs::json_quote(rec.name) << ":{\"type\":\"timing\",\"value_ms\":"
        << obs::json_number(rec.real_ms)
        << ",\"cpu_ms\":" << obs::json_number(rec.cpu_ms)
        << ",\"iterations\":" << rec.iterations << '}';
  }
  out << "}}\n";
  util::write_text_file(path, out.str());
}

void banner(const std::string& experiment_id, const std::string& title) {
  std::cout << "\n=== " << experiment_id << ": " << title << " ===\n"
            << "RoTA reproduction (DATE 2025); see EXPERIMENTS.md for "
               "paper-vs-measured notes.\n\n";
}

void emit(const util::TextTable& table,
          const std::vector<std::string>& csv_header,
          const std::vector<std::vector<std::string>>& csv_rows) {
  std::cout << table.str() << "\ncsv:\n";
  util::CsvWriter csv(std::cout, csv_header);
  for (const auto& row : csv_rows) csv.row(row);
  std::cout << '\n';
}

std::vector<sched::NetworkSchedule> schedule_all_workloads(
    const arch::AcceleratorConfig& cfg) {
  sched::Mapper mapper(cfg, sched::ObjectiveSpec{});
  std::vector<sched::NetworkSchedule> schedules;
  for (const auto& net : nn::all_workloads()) {
    schedules.push_back(mapper.schedule_network(net));
  }
  return schedules;
}

const std::vector<wear::PolicyKind>& paper_policies() {
  static const std::vector<wear::PolicyKind> kPolicies = {
      wear::PolicyKind::kBaseline, wear::PolicyKind::kRwl,
      wear::PolicyKind::kRwlRo};
  return kPolicies;
}

const PolicyRun& run_of(const ExperimentResult& result,
                        wear::PolicyKind kind) {
  const PolicyRun* run = result.find_run(kind);
  ROTA_ENSURE(run != nullptr, "bench requested the " + wear::to_string(kind) +
                                  " run but the experiment did not include it");
  return *run;
}

}  // namespace rota::bench
