#include "bench_common.hpp"

#include <iostream>

#include "util/csv.hpp"

namespace rota::bench {

void banner(const std::string& experiment_id, const std::string& title) {
  std::cout << "\n=== " << experiment_id << ": " << title << " ===\n"
            << "RoTA reproduction (DATE 2025); see EXPERIMENTS.md for "
               "paper-vs-measured notes.\n\n";
}

void emit(const util::TextTable& table,
          const std::vector<std::string>& csv_header,
          const std::vector<std::vector<std::string>>& csv_rows) {
  std::cout << table.str() << "\ncsv:\n";
  util::CsvWriter csv(std::cout, csv_header);
  for (const auto& row : csv_rows) csv.row(row);
  std::cout << '\n';
}

std::vector<sched::NetworkSchedule> schedule_all_workloads(
    const arch::AcceleratorConfig& cfg) {
  sched::Mapper mapper(cfg);
  std::vector<sched::NetworkSchedule> schedules;
  for (const auto& net : nn::all_workloads()) {
    schedules.push_back(mapper.schedule_network(net));
  }
  return schedules;
}

const std::vector<wear::PolicyKind>& paper_policies() {
  static const std::vector<wear::PolicyKind> kPolicies = {
      wear::PolicyKind::kBaseline, wear::PolicyKind::kRwl,
      wear::PolicyKind::kRwlRo};
  return kPolicies;
}

}  // namespace rota::bench
