/// Ablation (beyond the paper): wear-leveling also levels the local
/// network. Partial sums ride the column links of whatever space a tile
/// occupies, so link electromigration stress follows PE usage: the
/// fixed-corner baseline grinds the corner column links while RWL+RO
/// spreads the same total traffic across all rings. The torus moves no
/// extra words — it only relocates where they flow.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace rota;
  using wear::PolicyKind;
  bench::banner("Ablation: NoC link wear",
                "vertical-link traffic, SqueezeNet x50 iterations");

  sched::Mapper mapper(arch::rota_like(), sched::ObjectiveSpec{});
  const auto ns = mapper.schedule_network(nn::make_squeezenet());

  util::TextTable table({"policy", "total link words", "max link words",
                         "max/mean"});
  std::vector<std::vector<std::string>> csv;
  for (PolicyKind kind : bench::paper_policies()) {
    auto policy = wear::make_policy(kind, 14, 12);
    const auto t = sim::simulate_link_traffic(ns, *policy, 50, true);
    const double mean =
        static_cast<double>(t.total_words()) /
        static_cast<double>(t.vertical_links().size());
    table.add_row({wear::to_string(kind), std::to_string(t.total_words()),
                   std::to_string(t.max_link()),
                   util::fmt(static_cast<double>(t.max_link()) / mean, 2)});
    csv.push_back({wear::to_string(kind), std::to_string(t.total_words()),
                   std::to_string(t.max_link())});
  }
  bench::emit(table, {"policy", "total_words", "max_link_words"}, csv);

  std::cout << "Observation: identical totals across policies (the torus "
               "adds no traffic); the baseline's hottest link\ncarries "
               "several times the mean, RWL+RO flattens the profile — the "
               "torus levels interconnect wear as a side effect.\n";
  return 0;
}
