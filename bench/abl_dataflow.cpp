/// Ablation (beyond the paper): the wear-leveling story under the
/// platform's native row-stationary dataflow (Eyeriss, §II ref. [2])
/// versus the divisor-constrained energy-optimal mapper used in the main
/// benches. RS fixes the spatial shape (filter rows down the array,
/// output rows across it) and *fills* leftover rows by replicating across
/// filters, so it is a utilization-maximizing placement: occupancy lands
/// at 50–97% and the wear-leveling headroom shrinks accordingly. Together
/// with abl_mapper this brackets the paper's result: the ~1.7x win is a
/// property of energy-optimal (not occupancy-optimal) schedules, whose
/// divisor structure systematically under-fills the array.

#include <iostream>

#include "bench_common.hpp"

namespace {

double improvement_for(const rota::sched::NetworkSchedule& ns,
                       const rota::arch::AcceleratorConfig& accel) {
  using namespace rota;
  wear::WearSimulator base_sim(accel);
  auto base = wear::make_policy(wear::PolicyKind::kBaseline,
                                accel.array_width, accel.array_height);
  base_sim.run_iterations(ns, *base, 300);
  wear::WearSimulator ro_sim(accel);
  auto ro = wear::make_policy(wear::PolicyKind::kRwlRo, accel.array_width,
                              accel.array_height);
  ro_sim.run_iterations(ns, *ro, 300);
  return rel::lifetime_improvement(base_sim.tracker().usage_as_doubles(),
                                   ro_sim.tracker().usage_as_doubles());
}

}  // namespace

int main() {
  using namespace rota;
  bench::banner("Ablation: dataflow",
                "row-stationary (Eyeriss) vs flexible energy-optimal mapper");

  const arch::AcceleratorConfig accel = arch::rota_like();
  util::TextTable table({"network", "util (flexible)", "RWL+RO (flexible)",
                         "util (row-stationary)", "RWL+RO (row-stationary)"});
  std::vector<std::vector<std::string>> csv;

  for (const char* abbr : {"Res", "YL", "Sqz", "Mb", "Eff"}) {
    const nn::Network net = nn::workload_by_abbr(abbr);
    sched::Mapper flex(accel, sched::ObjectiveSpec{});
    sched::RsMapper rs(accel);
    const auto flex_ns = flex.schedule_network(net);
    const auto rs_ns = rs.schedule_network(net);
    const double flex_gain = improvement_for(flex_ns, accel);
    const double rs_gain = improvement_for(rs_ns, accel);
    table.add_row({abbr, util::fmt_pct(flex_ns.mean_utilization()),
                   util::fmt(flex_gain, 2) + "x",
                   util::fmt_pct(rs_ns.mean_utilization()),
                   util::fmt(rs_gain, 2) + "x"});
    csv.push_back({abbr, util::fmt(flex_ns.mean_utilization(), 4),
                   util::fmt(flex_gain, 4),
                   util::fmt(rs_ns.mean_utilization(), 4),
                   util::fmt(rs_gain, 4)});
  }
  bench::emit(table, {"abbr", "util_flex", "gain_flex", "util_rs", "gain_rs"},
              csv);

  std::cout << "Observation: RS replication packs the array (>= 50% and up "
               "to ~97% occupancy), leaving RWL+RO little to\nlevel — the "
               "same collapse the padded mapper shows in abl_mapper. "
               "Wear-leveling pays off exactly when the\nschedule is "
               "energy-optimal rather than occupancy-optimal, which is the "
               "regime the paper (and NeuroSpector) target.\n";
  return 0;
}
