/// Ablation (beyond the paper): how wear-leveling composes with spare-PE
/// redundancy. The paper's serial-chain model (Eq. 2) assumes the array
/// dies with its first PE; real designs may remap onto spares. Using the
/// exact k-out-of-n reliability with heterogeneous per-PE stress, this
/// bench reports the lifetime of Baseline vs RWL+RO usage fields as the
/// tolerated failure count grows: sparing rescues the baseline's corner
/// hotspot only partially, while wear-leveling helps at every spare level.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace rota;
  using wear::PolicyKind;
  bench::banner("Ablation: spares",
                "lifetime vs tolerated PE failures (SqueezeNet x300)");

  Experiment exp({arch::rota_like(), 300});
  const auto res = exp.run(nn::make_squeezenet(),
                           {PolicyKind::kBaseline, PolicyKind::kRwlRo});

  // Both runs processed identical work, so their activities must share one
  // time scale: normalize both by the baseline's peak usage.
  double peak = 1.0;
  for (std::int64_t v : bench::run_of(res, PolicyKind::kBaseline).usage.cells())
    peak = std::max(peak, static_cast<double>(v));
  auto normalized = [peak](const util::Grid<std::int64_t>& usage) {
    std::vector<double> a;
    a.reserve(usage.size());
    for (std::int64_t v : usage.cells())
      a.push_back(static_cast<double>(v) / peak);
    return a;
  };
  const auto base = normalized(bench::run_of(res, PolicyKind::kBaseline).usage);
  const auto ro = normalized(bench::run_of(res, PolicyKind::kRwlRo).usage);

  util::TextTable table({"spares", "baseline MTTF", "RWL+RO MTTF",
                         "WL gain at this spare level"});
  std::vector<std::vector<std::string>> csv;
  const double base0 = rel::spare_array_mttf(base, 0);
  for (std::int64_t s : {0, 1, 2, 4, 8, 16}) {
    const double mb = rel::spare_array_mttf(base, s);
    const double mr = rel::spare_array_mttf(ro, s);
    table.add_row({std::to_string(s), util::fmt(mb / base0, 3) + "x",
                   util::fmt(mr / base0, 3) + "x",
                   util::fmt(mr / mb, 3) + "x"});
    csv.push_back({std::to_string(s), util::fmt(mb / base0, 4),
                   util::fmt(mr / base0, 4), util::fmt(mr / mb, 4)});
  }
  bench::emit(table, {"spares", "baseline_mttf", "rwlro_mttf", "wl_gain"},
              csv);

  std::cout << "Observation: spares lengthen both designs' lifetimes, but "
               "the baseline's corner hotspot keeps burning\nthrough spares "
               "in the same region — wear-leveling retains a clear gain at "
               "every redundancy level.\n";
  return 0;
}
