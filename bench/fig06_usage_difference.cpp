/// Reproduces Fig. 6: (a) max PE usage difference of Baseline / RWL /
/// RWL+RO over 1,000 iterations of SqueezeNet on the 14×12 array, (b) the
/// zoom into the first 200 iterations where RWL+RO stays bounded, and
/// (c–e) the resulting PE usage heatmaps after 1,000 iterations.

#include <iostream>
#include <map>

#include "bench_common.hpp"

int main() {
  using namespace rota;
  using wear::PolicyKind;
  bench::banner("Fig. 6a/6b",
                "max PE usage difference, SqueezeNet x 1,000 iterations");

  constexpr std::int64_t kIterations = 1000;
  Experiment exp({arch::rota_like(), kIterations});
  const nn::Network net = nn::make_squeezenet();

  // Sample points: dense over the first 200 iterations (Fig. 6b) and
  // sparse beyond (Fig. 6a).
  std::vector<std::int64_t> samples;
  for (std::int64_t i = 1; i <= 200; i += 10) samples.push_back(i);
  for (std::int64_t i = 250; i <= kIterations; i += 50) samples.push_back(i);

  std::map<PolicyKind, std::map<std::int64_t, std::int64_t>> series;
  std::map<PolicyKind, util::Grid<std::int64_t>> final_usage;
  for (PolicyKind kind : bench::paper_policies()) {
    const auto ns = exp.schedule(net);
    auto policy = wear::make_policy(kind, ns.config.array_width,
                                    ns.config.array_height);
    wear::WearSimulator sim(arch::rota_like());
    auto& dest = series[kind];
    sim.run_iterations(ns, *policy, kIterations,
                       [&](std::int64_t it, const wear::UsageTracker& t) {
                         for (std::int64_t s : samples) {
                           if (s == it) dest[it] = t.stats().max_diff;
                         }
                       });
    final_usage.emplace(kind, sim.tracker().usage());
  }

  util::TextTable table({"iteration", "Baseline D_max", "RWL D_max",
                         "RWL+RO D_max"});
  std::vector<std::vector<std::string>> csv;
  for (std::int64_t s : samples) {
    table.add_row({std::to_string(s),
                   std::to_string(series[PolicyKind::kBaseline][s]),
                   std::to_string(series[PolicyKind::kRwl][s]),
                   std::to_string(series[PolicyKind::kRwlRo][s])});
    csv.push_back({std::to_string(s),
                   std::to_string(series[PolicyKind::kBaseline][s]),
                   std::to_string(series[PolicyKind::kRwl][s]),
                   std::to_string(series[PolicyKind::kRwlRo][s])});
  }
  bench::emit(table, {"iteration", "baseline", "rwl", "rwl_ro"}, csv);

  std::cout << "Shape check: Baseline grows fastest (linear, corner-biased); "
               "RWL grows linearly but ~10-100x slower;\nRWL+RO stays bounded "
               "at the plot scale (paper Fig. 6b).\n";

  bench::banner("Fig. 6c-e", "PE usage heatmaps after 1,000 iterations");
  for (PolicyKind kind : bench::paper_policies()) {
    std::cout << wear::to_string(kind) << " (absolute scale):\n"
              << util::ascii_heatmap(final_usage.at(kind)) << '\n'
              << wear::to_string(kind) << " (deviation scale, min..max):\n"
              << util::ascii_heatmap_deviation(final_usage.at(kind)) << '\n';
  }
  return 0;
}
