/// Reproduces Fig. 3: PE-usage heatmaps of selected ResNet-50 and
/// SqueezeNet layers on the 14×12 array — (a) the mesh baseline with a
/// fixed lower-left starting point shows severe corner bias; (b) the
/// torus-connected array after rotational wear-leveling is balanced.

#include <iostream>

#include "bench_common.hpp"

namespace {

void show_layer(const rota::sched::NetworkSchedule& ns,
                const rota::sched::LayerSchedule& layer) {
  using namespace rota;
  std::cout << "--- " << ns.network_abbr << ":" << layer.layer_name
            << "  space " << layer.space.x << "x" << layer.space.y << " ("
            << util::fmt_pct(layer.utilization(ns.config)) << " of PEs), Z = "
            << layer.tiles << " tiles ---\n";

  for (const wear::PolicyKind kind :
       {wear::PolicyKind::kBaseline, wear::PolicyKind::kRwl}) {
    wear::WearSimulator sim(arch::rota_like());
    auto policy = wear::make_policy(kind, ns.config.array_width,
                                    ns.config.array_height);
    // Run this layer repeatedly, as a layer-local view (Fig. 3 heatmaps
    // are per-layer usage accumulations).
    for (int rep = 0; rep < 8; ++rep) sim.run_layer(layer, *policy);
    const auto stats = sim.tracker().stats();
    std::cout << wear::to_string(kind)
              << "  (D_max = " << stats.max_diff
              << ", min = " << stats.min << ", max = " << stats.max << ")\n"
              << util::ascii_heatmap(sim.tracker().usage()) << '\n';
  }
}

}  // namespace

int main() {
  using namespace rota;
  bench::banner("Fig. 3",
                "PE utilization heatmaps: mesh fixed-corner vs torus + RWL");

  sched::Mapper mapper(arch::rota_like(), sched::ObjectiveSpec{});

  // Three differently-sized ResNet utilization spaces (the paper picks a
  // small, a mid and a large one) and two SqueezeNet layers.
  const nn::Network res = nn::make_resnet50();
  const auto res_sched = mapper.schedule_network(res);
  const char* res_layers[] = {"conv1", "conv3_1_3x3", "conv5_1_3x3"};
  for (const char* name : res_layers) {
    for (const auto& l : res_sched.layers) {
      if (l.layer_name == name) show_layer(res_sched, l);
    }
  }

  const nn::Network sqz = nn::make_squeezenet();
  const auto sqz_sched = mapper.schedule_network(sqz);
  const char* sqz_layers[] = {"fire2_squeeze1x1", "fire9_expand3x3"};
  for (const char* name : sqz_layers) {
    for (const auto& l : sqz_sched.layers) {
      if (l.layer_name == name) show_layer(sqz_sched, l);
    }
  }

  std::cout << "Shape check: Baseline heatmaps are anchored at the "
               "lower-left corner with idle far corners;\nRWL heatmaps are "
               "uniform up to the Eq. 9 residual (D_max <= W+1 per pass).\n";
  return 0;
}
