/// Reproduces Fig. 7: the transient of the accelerator's projected
/// lifetime (relative to the fixed-corner baseline at the same iteration)
/// and R_diff over the first 200 iterations of SqueezeNet under RWL+RO.
/// R_diff converges toward 0 and the projected lifetime inversely follows.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace rota;
  bench::banner("Fig. 7",
                "projected lifetime vs R_diff, SqueezeNet RWL+RO, 200 iters");

  Experiment exp({arch::rota_like(), 200});
  const auto samples = exp.run_transient(nn::make_squeezenet(),
                                         wear::PolicyKind::kRwlRo, 200);

  util::TextTable table(
      {"iteration", "R_diff", "lifetime vs baseline", "D_max"});
  std::vector<std::vector<std::string>> csv;
  for (const auto& s : samples) {
    if (s.iteration % 10 != 0 && s.iteration != 1) continue;
    table.add_row({std::to_string(s.iteration), util::fmt(s.r_diff, 5),
                   util::fmt(s.improvement, 5) + "x",
                   std::to_string(s.max_usage_diff)});
    csv.push_back({std::to_string(s.iteration), util::fmt(s.r_diff, 6),
                   util::fmt(s.improvement, 5),
                   std::to_string(s.max_usage_diff)});
  }
  bench::emit(table, {"iteration", "r_diff", "lifetime_improvement", "d_max"},
              csv);

  std::cout << "Shape check: R_diff decays toward 0 while the projected "
               "lifetime rises and saturates (paper Fig. 7:\nthe two curves "
               "mirror each other). At this simulator's tile granularity "
               "(hundreds of tiles per layer)\nthe lifetime saturates within "
               "the first iterations, so the rise is visible only in the "
               "4th decimal;\nthe R_diff decay carries the transient.\n";
  return 0;
}
