/// Reproduces Table II: the DNN workload zoo used in the experiments, with
/// the model statistics of this repository's shape tables.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace rota;
  bench::banner("Table II", "DNN workloads used in experiments");

  util::TextTable table({"DNN domain", "network", "abbr", "layers",
                         "unique shapes", "GMACs", "feature"});
  std::vector<std::vector<std::string>> csv;

  const char* features[] = {
      "Residual blocks",     "Asymmetric weights",   "Large dataset",
      "Small weights",       "Group Conv.",          "MBConv. blocks",
      "Transformer encoding", "Embedded transformer", "Large language model",
  };
  // Table II row order: Res, Inc, YL, Sqz, Mb, Eff, VT, MVT, LM.
  const char* order[] = {"Res", "Inc", "YL", "Sqz", "Mb",
                         "Eff", "VT",  "MVT", "LM"};

  int i = 0;
  for (const char* abbr : order) {
    const nn::Network net = nn::workload_by_abbr(abbr);
    const double gmacs = static_cast<double>(net.total_macs()) / 1e9;
    table.add_row({to_string(net.domain()), net.name(), net.abbr(),
                   std::to_string(net.layer_count()),
                   std::to_string(net.unique_shape_count()),
                   util::fmt(gmacs, 2), features[i]});
    csv.push_back({net.abbr(), net.name(), to_string(net.domain()),
                   std::to_string(net.layer_count()),
                   std::to_string(net.unique_shape_count()),
                   util::fmt(gmacs, 3)});
    ++i;
  }
  bench::emit(table, {"abbr", "network", "domain", "layers", "unique_shapes",
                      "gmacs"},
              csv);
  return 0;
}
