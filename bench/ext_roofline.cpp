/// Extension: roofline placement of the Table II workloads and a stronger
/// form of the §V-D performance claim. Including the off-chip memory
/// system, each layer runs at the slower of its array-side rate and its
/// DRAM-traffic floor; wear-leveling changes neither term, so the
/// zero-cycle-cost result survives a bandwidth-limited system too.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace rota;
  bench::banner("Extension: roofline",
                "compute- vs memory-bound layers and the zero-cost claim");

  const arch::AcceleratorConfig mesh = arch::eyeriss_like();
  const arch::AcceleratorConfig torus = arch::rota_like();
  const sim::ExecutionEngine mesh_engine(mesh);
  const sim::ExecutionEngine torus_engine(torus);
  const sim::DramParams dram;  // 2 words/cycle sustained

  sched::Mapper mapper(mesh, sched::ObjectiveSpec{});
  util::TextTable table({"network", "layers mem-bound", "array cycles",
                         "roofline cycles", "slowdown", "mesh == torus"});
  std::vector<std::vector<std::string>> csv;
  for (const auto& net : nn::all_workloads()) {
    const auto ns = mapper.schedule_network(net);
    int mem_bound = 0;
    for (const auto& l : ns.layers) {
      if (torus_engine.estimate_layer_with_dram(l, dram).memory_bound)
        ++mem_bound;
    }
    const double array_cycles = torus_engine.network_cycles(ns);
    const double roof_cycles =
        torus_engine.network_cycles_with_dram(ns, dram);
    const bool equal =
        mesh_engine.network_cycles_with_dram(ns, dram) == roof_cycles;
    table.add_row(
        {net.abbr(),
         std::to_string(mem_bound) + "/" + std::to_string(ns.layers.size()),
         util::fmt(array_cycles, 0), util::fmt(roof_cycles, 0),
         util::fmt(roof_cycles / array_cycles, 2) + "x",
         equal ? "yes" : "NO"});
    csv.push_back({net.abbr(), std::to_string(mem_bound),
                   std::to_string(ns.layers.size()),
                   util::fmt(array_cycles, 0), util::fmt(roof_cycles, 0)});
  }
  bench::emit(table, {"abbr", "mem_bound_layers", "layers", "array_cycles",
                      "roofline_cycles"},
              csv);

  std::cout << "Observation: some layers (1x1-heavy and FC/attention "
               "stages) hit the DRAM roof, but mesh and torus\ncycle counts "
               "stay identical — anchoring offsets move no extra bytes.\n";
  return 0;
}
