#!/usr/bin/env python3
"""Soak `rota serve` under injected software faults and prove degradation
is graceful.

Usage: fault_soak.py PATH/TO/rota

Three serve sessions against the same request batch:

  1. clean      — no faults, fresh cache dir (the reference replies);
  2. fault cold — ROTA_FI arms failed reads/writes and bit-flipped
                  reads scoped to the schedule-cache directory;
  3. fault warm — same faulty plan again over the now-populated cache,
                  so disk reads (and their corruption/retry paths)
                  actually execute.

Pass criteria, all hard assertions:

  * every session exits 0 — injected faults must never crash or hang
    the server, and every request gets a reply;
  * replies are bit-identical across all three sessions once the
    nondeterministic `wall_seconds` timing field is stripped — the
    cache may lose work under faults, never invent it;
  * the faulty sessions' metrics JSON shows the faults actually fired
    (fi.* counters nonzero) and the hardening actually engaged
    (svc.cache.* retry/corrupt-recompute counters nonzero);
  * a fourth session with --queue-cap 1 under heavy compute sheds at
    least one request with a structured `overloaded` error while still
    answering every line (svc.requests_shed nonzero).

Exit status: 0 = OK, non-zero assertion/diagnostic otherwise.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile

# The envelope generation this tool understands (obs::kSchemaVersion in
# src/obs/json.hpp). Bump in lockstep with the C++ constant.
SCHEMA_VERSION = 2

# Scoping substring for ROTA_FI `match=`: faults hit only the schedule
# cache, not the metrics/trace artifacts this script must read back.
CACHE_DIR_NAME = "soak-schedule-cache"

FAULT_PLAN = (
    "read=0.15,write=0.15,corrupt=0.3,seed=7,match=" + CACHE_DIR_NAME
)


def request_batch() -> str:
    """Schedule-heavy batch: many distinct shapes -> many cache files."""
    lines = []
    for i, workload in enumerate(("Sqz", "Mb", "Res", "Eff")):
        lines.append(
            json.dumps(
                {
                    "schema_version": SCHEMA_VERSION,
                    "id": f"s{i}",
                    "op": "schedule",
                    "workload": workload,
                }
            )
        )
    lines.append(
        json.dumps(
            {
                "schema_version": SCHEMA_VERSION,
                "id": "w0",
                "op": "wear",
                "workload": "Sqz",
                "iters": 200,
            }
        )
    )
    lines.append(
        json.dumps(
            {"schema_version": SCHEMA_VERSION, "id": "bye", "op": "shutdown"}
        )
    )
    return "\n".join(lines) + "\n"


def serve(
    rota: str,
    workdir: str,
    tag: str,
    batch: str,
    fault_plan: str | None,
    extra_flags: list[str] | None = None,
) -> tuple[list[str], dict]:
    """One serve session; returns (reply lines sans wall_seconds, metrics)."""
    cache_dir = os.path.join(workdir, tag, CACHE_DIR_NAME)
    metrics_path = os.path.join(workdir, tag, "metrics.json")
    os.makedirs(os.path.dirname(metrics_path), exist_ok=True)
    env = dict(os.environ)
    env.pop("ROTA_FI", None)
    if fault_plan is not None:
        env["ROTA_FI"] = fault_plan
    proc = subprocess.run(
        [rota, "serve", "--cache-dir", cache_dir, "--metrics", metrics_path]
        + (extra_flags or []),
        input=batch,
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    assert proc.returncode == 0, (
        f"{tag}: serve exited {proc.returncode}\n{proc.stderr}"
    )
    replies = []
    for line in proc.stdout.splitlines():
        reply = json.loads(line)
        assert reply.get("schema_version") == SCHEMA_VERSION, reply
        reply.pop("wall_seconds", None)
        replies.append(json.dumps(reply, sort_keys=True))
    doc = json.load(open(metrics_path))
    assert doc.get("schema_version") == SCHEMA_VERSION, metrics_path
    return replies, doc["metrics"]


def counter(metrics: dict, name: str) -> int:
    return int(metrics.get(name, {}).get("value", 0))


def main() -> None:
    if len(sys.argv) != 2:
        sys.exit(__doc__)
    rota = sys.argv[1]
    batch = request_batch()
    workdir = tempfile.mkdtemp(prefix="rota_fault_soak_")
    try:
        clean, _ = serve(rota, workdir, "clean", batch, None)
        assert len(clean) == batch.count("\n"), "clean: missing replies"
        assert all('"ok":true' in r or '"ok": true' in r for r in clean), clean

        # Cold and warm faulty sessions share one cache dir ("fault/...").
        cold, cold_metrics = serve(rota, workdir, "fault", batch, FAULT_PLAN)
        warm, warm_metrics = serve(rota, workdir, "fault", batch, FAULT_PLAN)

        assert cold == clean, "fault cold: replies differ from clean run"
        assert warm == clean, "fault warm: replies differ from clean run"

        injected = sum(
            counter(m, name)
            for m in (cold_metrics, warm_metrics)
            for name in ("fi.read_faults", "fi.write_faults", "fi.corruptions")
        )
        assert injected > 0, "fault plan armed but no fault ever fired"
        hardened = sum(
            counter(m, name)
            for m in (cold_metrics, warm_metrics)
            for name in (
                "svc.cache.disk_read_retries",
                "svc.cache.disk_write_retries",
                "svc.cache.disk_corrupt",
            )
        )
        assert hardened > 0, "faults fired but no retry/recompute engaged"

        # Overload shedding: eight slow wear requests against queue-cap 1.
        shed_lines = [
            json.dumps(
                {
                    "schema_version": SCHEMA_VERSION,
                    "id": f"w{i}",
                    "op": "wear",
                    "workload": "Sqz",
                    "iters": 3000,
                }
            )
            for i in range(8)
        ]
        shed_batch = "\n".join(shed_lines) + "\n"
        replies, shed_metrics = serve(
            rota, workdir, "shed", shed_batch, None, ["--queue-cap", "1"]
        )
        assert len(replies) == 8, "shed: every request must be answered"
        overloaded = sum(1 for r in replies if '"overloaded"' in r)
        assert overloaded >= 1, "queue-cap 1 under 8 slow requests never shed"
        assert counter(shed_metrics, "svc.requests_shed") == overloaded

        print(
            f"fault soak OK: {injected} faults injected, "
            f"{hardened} retries/recomputes, replies bit-identical; "
            f"{overloaded}/8 requests shed at --queue-cap 1"
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
