#!/usr/bin/env python3
"""Soak `rota serve` under injected software faults and prove degradation
is graceful — and observable, live.

Usage: fault_soak.py PATH/TO/rota [--artifacts DIR]

Three serve sessions against the same request batch:

  1. clean      — no faults, fresh cache dir (the reference replies);
  2. fault cold — ROTA_FI arms failed reads/writes and bit-flipped
                  reads scoped to the schedule-cache directory;
  3. fault warm — same faulty plan again over the now-populated cache,
                  so disk reads (and their corruption/retry paths)
                  actually execute.

Pass criteria, all hard assertions:

  * every session exits 0 — injected faults must never crash or hang
    the server, and every request gets a reply;
  * replies are bit-identical across all three sessions once the
    nondeterministic `wall_seconds` timing field is stripped — the
    cache may lose work under faults, never invent it;
  * the faulty sessions' metrics JSON shows the faults actually fired
    (fi.* counters nonzero) and the hardening actually engaged
    (svc.cache.* retry/corrupt-recompute counters nonzero);
  * a faulted session run with --stats-interval publishes live
    snapshots WHILE serving (final seq >= 2), the JSON and OpenMetrics
    twins agree (validated via tools/check_openmetrics.py), the
    snapshot carries nonzero fi/retry counters plus p50/p95/p99
    latency histograms, the in-band {"op":"stats"} request answers
    with the same envelope, and the --events sink is valid JSON lines;
  * a session with --queue-cap 1 under heavy compute sheds at least
    one request with a structured `overloaded` error while still
    answering every line (svc.requests_shed nonzero, and visible in
    its exit snapshot);
  * a `rota degrade` lifetime run produces a bit-identical fault
    timeline at --threads 1/8/0 and under injected checkpoint write
    faults, with nonzero degrade.remaps / degrade.reschedules counters
    in its exit snapshot and structured degrade events in the sink.

With --artifacts DIR the stats/events artifacts are copied there for CI
upload before the scratch directory is removed.

Exit status: 0 = OK, non-zero assertion/diagnostic otherwise.
"""

from __future__ import annotations

import json
import os
import shutil
import subprocess
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_openmetrics  # noqa: E402  (sibling tool, reused as library)

# The envelope generation this tool understands (obs::kSchemaVersion in
# src/obs/json.hpp). Bump in lockstep with the C++ constant.
SCHEMA_VERSION = 2

# Scoping substring for ROTA_FI `match=`: faults hit only the schedule
# cache, not the metrics/trace artifacts this script must read back.
CACHE_DIR_NAME = "soak-schedule-cache"

FAULT_PLAN = (
    "read=0.15,write=0.15,corrupt=0.3,seed=7,match=" + CACHE_DIR_NAME
)


def request_batch() -> str:
    """Schedule-heavy batch: many distinct shapes -> many cache files."""
    lines = []
    for i, workload in enumerate(("Sqz", "Mb", "Res", "Eff")):
        lines.append(
            json.dumps(
                {
                    "schema_version": SCHEMA_VERSION,
                    "id": f"s{i}",
                    "op": "schedule",
                    "workload": workload,
                }
            )
        )
    lines.append(
        json.dumps(
            {
                "schema_version": SCHEMA_VERSION,
                "id": "w0",
                "op": "wear",
                "workload": "Sqz",
                "iters": 200,
            }
        )
    )
    lines.append(
        json.dumps(
            {"schema_version": SCHEMA_VERSION, "id": "bye", "op": "shutdown"}
        )
    )
    return "\n".join(lines) + "\n"


def serve(
    rota: str,
    workdir: str,
    tag: str,
    batch: str,
    fault_plan: str | None,
    extra_flags: list[str] | None = None,
) -> tuple[list[str], dict]:
    """One serve session; returns (reply lines sans wall_seconds, metrics)."""
    cache_dir = os.path.join(workdir, tag, CACHE_DIR_NAME)
    metrics_path = os.path.join(workdir, tag, "metrics.json")
    os.makedirs(os.path.dirname(metrics_path), exist_ok=True)
    env = dict(os.environ)
    env.pop("ROTA_FI", None)
    if fault_plan is not None:
        env["ROTA_FI"] = fault_plan
    proc = subprocess.run(
        [rota, "serve", "--cache-dir", cache_dir, "--metrics", metrics_path]
        + (extra_flags or []),
        input=batch,
        capture_output=True,
        text=True,
        timeout=600,
        env=env,
    )
    assert proc.returncode == 0, (
        f"{tag}: serve exited {proc.returncode}\n{proc.stderr}"
    )
    replies = []
    for line in proc.stdout.splitlines():
        reply = json.loads(line)
        assert reply.get("schema_version") == SCHEMA_VERSION, reply
        reply.pop("wall_seconds", None)
        replies.append(json.dumps(reply, sort_keys=True))
    doc = json.load(open(metrics_path))
    assert doc.get("schema_version") == SCHEMA_VERSION, metrics_path
    return replies, doc["metrics"]


def counter(metrics: dict, name: str) -> int:
    return int(metrics.get(name, {}).get("value", 0))


def check_live_telemetry(rota: str, workdir: str, batch: str) -> int:
    """Faulted serve with live snapshots + events; returns publishes seen."""
    tag = "stats"
    stats_json = os.path.join(workdir, tag, "stats.json")
    stats_om = os.path.join(workdir, tag, "stats.om")
    events_path = os.path.join(workdir, tag, "events.jsonl")
    # A heavy wear request stretches the session across several sampler
    # intervals, then an in-band stats request reads the same telemetry.
    lines = batch.splitlines()
    extra = [
        json.dumps(
            {
                "schema_version": SCHEMA_VERSION,
                "id": "heavy",
                "op": "wear",
                "workload": "Sqz",
                "iters": 3000,
            }
        ),
        json.dumps(
            {"schema_version": SCHEMA_VERSION, "id": "st", "op": "stats"}
        ),
    ]
    stats_batch = "\n".join(lines[:-1] + extra + [lines[-1]]) + "\n"
    replies, _ = serve(
        rota,
        workdir,
        tag,
        stats_batch,
        FAULT_PLAN,
        [
            "--stats-out", stats_json,
            "--stats-interval", "25",
            "--events", events_path,
        ],
    )

    # (a) mid-run publishing: the exit snapshot's seq counts every publish,
    # so seq >= 2 proves at least one landed while requests were in flight.
    snapshot = json.load(open(stats_json))
    assert snapshot.get("schema_version") == SCHEMA_VERSION, snapshot
    assert snapshot.get("kind") == "metrics_snapshot", snapshot
    assert snapshot.get("seq", 0) >= 2, (
        f"no mid-run snapshot published (seq={snapshot.get('seq')})"
    )
    metrics = snapshot["metrics"]
    injected = sum(
        counter(metrics, n)
        for n in ("fi.read_faults", "fi.write_faults", "fi.corruptions")
    )
    assert injected > 0, "snapshot shows no injected faults"
    retried = sum(
        counter(metrics, n)
        for n in (
            "svc.cache.disk_read_retries",
            "svc.cache.disk_write_retries",
            "svc.cache.disk_corrupt",
        )
    )
    assert retried > 0, "snapshot shows no retry/recompute activity"

    # (b) the OpenMetrics twin parses and agrees with the JSON.
    errors = check_openmetrics.validate(
        open(stats_om).read(), open(stats_json).read()
    )
    assert not errors, "OpenMetrics twin disagrees: " + "; ".join(errors)

    # (c) per-request latency histograms with the full quantile ladder.
    for name in ("svc.queue_wait_ms", "svc.compute_ms", "svc.reply_ms"):
        hist = metrics.get(name)
        assert hist and hist.get("type") == "histogram", f"missing {name}"
        assert hist["count"] > 0, f"{name} never observed"
        for q in ("p50", "p95", "p99"):
            assert q in hist, f"{name} lacks {q}"

    # (d) the in-band stats reply carries the same envelope.
    in_band = next(
        json.loads(r) for r in replies if '"id": "st"' in r or '"id":"st"' in r
    )
    assert in_band["ok"], in_band
    assert in_band["result"]["kind"] == "metrics_snapshot", in_band
    assert in_band["result"]["schema_version"] == SCHEMA_VERSION, in_band
    # queue_wait is observed before a job executes, so the stats job's own
    # pickup guarantees the histogram exists by the time it snapshots.
    assert "svc.queue_wait_ms" in in_band["result"]["metrics"], in_band

    # (e) the events sink is valid JSON lines with the structured fields.
    with open(events_path) as fh:
        events = [json.loads(line) for line in fh if line.strip()]
    assert events, "events sink is empty"
    for ev in events:
        assert ev["schema_version"] == SCHEMA_VERSION, ev
        assert ev["severity"] in ("debug", "info", "warn", "error"), ev
        assert ev["component"], ev
    return snapshot["seq"]


def check_degrade(rota: str, workdir: str) -> tuple[int, int]:
    """Degraded-lifetime run under ROTA_FI with live telemetry.

    Arms write/corrupt faults scoped to the checkpoint file so the
    engine's atomic checkpoint saves exercise their retry path, scrapes
    the exit snapshot for the degrade.* counters, and proves the fault
    timeline is byte-identical across thread counts and under injected
    I/O faults. Returns (remaps, reschedules) seen in the snapshot.
    """
    tag = "degrade"
    outdir = os.path.join(workdir, tag)
    os.makedirs(outdir, exist_ok=True)
    stats_json = os.path.join(outdir, "stats.json")
    stats_om = os.path.join(outdir, "stats.om")
    events_path = os.path.join(outdir, "events.jsonl")
    ckpt_name = "soak-degrade-ckpt"

    def run(threads: str, csv: str, faulted: bool) -> None:
        env = dict(os.environ)
        env.pop("ROTA_FI", None)
        argv = [
            rota, "degrade", "AN",
            "--iters", "96", "--spares", "2",
            "--fault", "pe=5,5@20", "--fault", "weibull=5",
            "--retire", "0.9", "--seed", "7",
            "--threads", threads, "--csv", csv,
        ]
        if faulted:
            env["ROTA_FI"] = "write=0.3,corrupt=0.3,seed=11,match=" + ckpt_name
            argv += [
                "--checkpoint", os.path.join(outdir, ckpt_name),
                "--ckpt-every", "16",
                "--stats-out", stats_json,
                "--events", events_path,
            ]
        proc = subprocess.run(
            argv, capture_output=True, text=True, timeout=600, env=env
        )
        assert proc.returncode == 0, (
            f"degrade --threads {threads} exited {proc.returncode}\n"
            f"{proc.stderr}"
        )

    # Reference timeline, then the faulted telemetry run and two more
    # lane counts: all four CSVs must be byte-identical (DESIGN.md §16).
    csvs = [os.path.join(outdir, f"timeline{i}.csv") for i in range(4)]
    run("1", csvs[0], faulted=False)
    run("1", csvs[1], faulted=True)
    run("8", csvs[2], faulted=False)
    run("0", csvs[3], faulted=False)
    reference = open(csvs[0], "rb").read()
    assert reference, "degrade wrote an empty timeline"
    for path in csvs[1:]:
        assert open(path, "rb").read() == reference, (
            f"degrade timeline differs: {path}"
        )

    snapshot = json.load(open(stats_json))
    assert snapshot.get("schema_version") == SCHEMA_VERSION, snapshot
    metrics = snapshot["metrics"]
    remaps = counter(metrics, "degrade.remaps")
    reschedules = counter(metrics, "degrade.reschedules")
    assert counter(metrics, "degrade.faults") > 0, (
        "snapshot shows no injected hardware faults"
    )
    assert remaps > 0, "snapshot shows no spare remaps"
    assert reschedules > 0, "snapshot shows no degraded-array reschedules"

    errors = check_openmetrics.validate(
        open(stats_om).read(), open(stats_json).read()
    )
    assert not errors, "degrade OM twin disagrees: " + "; ".join(errors)

    with open(events_path) as fh:
        events = [json.loads(line) for line in fh if line.strip()]
    assert any(ev["component"] == "degrade" for ev in events), (
        "no structured degrade events emitted"
    )
    return remaps, reschedules


def main() -> None:
    args = sys.argv[1:]
    artifacts_dir = None
    if "--artifacts" in args:
        idx = args.index("--artifacts")
        artifacts_dir = args[idx + 1]
        del args[idx:idx + 2]
    if len(args) != 1:
        sys.exit(__doc__)
    rota = args[0]
    batch = request_batch()
    workdir = tempfile.mkdtemp(prefix="rota_fault_soak_")
    try:
        clean, _ = serve(rota, workdir, "clean", batch, None)
        assert len(clean) == batch.count("\n"), "clean: missing replies"
        assert all('"ok":true' in r or '"ok": true' in r for r in clean), clean

        # Cold and warm faulty sessions share one cache dir ("fault/...").
        cold, cold_metrics = serve(rota, workdir, "fault", batch, FAULT_PLAN)
        warm, warm_metrics = serve(rota, workdir, "fault", batch, FAULT_PLAN)

        assert cold == clean, "fault cold: replies differ from clean run"
        assert warm == clean, "fault warm: replies differ from clean run"

        injected = sum(
            counter(m, name)
            for m in (cold_metrics, warm_metrics)
            for name in ("fi.read_faults", "fi.write_faults", "fi.corruptions")
        )
        assert injected > 0, "fault plan armed but no fault ever fired"
        hardened = sum(
            counter(m, name)
            for m in (cold_metrics, warm_metrics)
            for name in (
                "svc.cache.disk_read_retries",
                "svc.cache.disk_write_retries",
                "svc.cache.disk_corrupt",
            )
        )
        assert hardened > 0, "faults fired but no retry/recompute engaged"

        # Live telemetry under the same fault plan.
        snapshots = check_live_telemetry(rota, workdir, batch)

        # Overload shedding: eight slow wear requests against queue-cap 1.
        shed_lines = [
            json.dumps(
                {
                    "schema_version": SCHEMA_VERSION,
                    "id": f"w{i}",
                    "op": "wear",
                    "workload": "Sqz",
                    "iters": 3000,
                }
            )
            for i in range(8)
        ]
        shed_batch = "\n".join(shed_lines) + "\n"
        shed_stats = os.path.join(workdir, "shed", "stats.json")
        replies, shed_metrics = serve(
            rota, workdir, "shed", shed_batch, None,
            ["--queue-cap", "1", "--stats-out", shed_stats],
        )
        assert len(replies) == 8, "shed: every request must be answered"
        overloaded = sum(1 for r in replies if '"overloaded"' in r)
        assert overloaded >= 1, "queue-cap 1 under 8 slow requests never shed"
        assert counter(shed_metrics, "svc.requests_shed") == overloaded
        # The shed counter is also visible in the exit snapshot twins.
        shed_snapshot = json.load(open(shed_stats))
        assert (
            counter(shed_snapshot["metrics"], "svc.requests_shed")
            == overloaded
        ), shed_snapshot
        errors = check_openmetrics.validate(
            open(shed_stats[: -len(".json")] + ".om").read(),
            open(shed_stats).read(),
        )
        assert not errors, "shed OM twin disagrees: " + "; ".join(errors)

        # Degraded-lifetime engine: deterministic timeline, live spare
        # remapping and rescheduling visible in the exit snapshot, and
        # checkpoint saves surviving injected write faults.
        remaps, reschedules = check_degrade(rota, workdir)

        if artifacts_dir:
            os.makedirs(artifacts_dir, exist_ok=True)
            for tag, name in (
                ("stats", "stats.json"),
                ("stats", "stats.om"),
                ("stats", "events.jsonl"),
                ("shed", "stats.json"),
                ("degrade", "stats.json"),
                ("degrade", "events.jsonl"),
            ):
                src = os.path.join(workdir, tag, name)
                if os.path.exists(src):
                    shutil.copy(
                        src, os.path.join(artifacts_dir, f"{tag}-{name}")
                    )

        print(
            f"fault soak OK: {injected} faults injected, "
            f"{hardened} retries/recomputes, replies bit-identical; "
            f"{snapshots} live snapshots published under faults; "
            f"{overloaded}/8 requests shed at --queue-cap 1; "
            f"degrade timeline bit-identical with {remaps} remaps and "
            f"{reschedules} reschedules"
        )
    finally:
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    main()
