#!/usr/bin/env python3
"""Validate `rota pareto --json` envelopes and cross-check fronts.

Usage: check_pareto.py FILE [FILE ...]
                       [--same-front] [--assert-selected-mttf-improves]

Every FILE is schema-checked: the {"schema_version": N, "manifest": ...,
"pareto": {...}} envelope written by cmd_pareto, with per-layer fronts
whose points carry (mapping, energy, mttf, cycles, tiles, pe_allocations,
anchor, selected). Beyond field types the checker asserts the front
invariants the mapper promises (DESIGN.md §15):

  * every layer has at least one point and exactly one selected point;
  * points come in canonical order (energy non-decreasing);
  * no front member Pareto-dominates another (<= energy, >= mttf,
    <= cycles with one strict) — fronts are dominance-free by definition.

Two cross-file modes, both over exactly two FILEs:

  * --same-front: the "pareto" objects must be byte-equal after JSON
    round-trip. Manifests are ignored on purpose — they carry timestamps
    and wall-clock fields — so this is the thread-count determinism check
    (`--threads 1` vs `--threads 8` outputs must agree here).
  * --assert-selected-mttf-improves: FILE1 is the energy-objective run,
    FILE2 a lifetime-leaning run of the same workload; per layer, the
    selected point of FILE2 must project an MTTF >= FILE1's. A lifetime
    scalarization that picks shorter-lived schedules than pure energy is
    a selection bug.

Exit status: 0 = all checks passed, 1 = at least one violation.
"""

from __future__ import annotations

import argparse
import json
import sys

# obs::kSchemaVersion (src/obs/json.hpp); bump in lockstep.
SCHEMA_VERSION = 2


def fail(path: str, msg: str, errors: list) -> None:
    errors.append(f"{path}: {msg}")


def dominates(a: dict, b: dict) -> bool:
    ge = (a["energy"] <= b["energy"] and a["mttf"] >= b["mttf"]
          and a["cycles"] <= b["cycles"])
    strict = (a["energy"] < b["energy"] or a["mttf"] > b["mttf"]
              or a["cycles"] < b["cycles"])
    return ge and strict


def check_point(path: str, where: str, pt, errors: list) -> bool:
    if not isinstance(pt, dict):
        fail(path, f"{where}: point is not an object", errors)
        return False
    ok = True
    for key, kinds in [("mapping", str), ("energy", (int, float)),
                       ("mttf", (int, float)), ("cycles", (int, float)),
                       ("tiles", int), ("pe_allocations", int),
                       ("selected", bool)]:
        value = pt.get(key)
        # bool is an int subclass; keep it out of the numeric fields.
        if not isinstance(value, kinds) or (kinds is not bool
                                            and isinstance(value, bool)):
            fail(path, f"{where}: field '{key}' missing or mistyped", errors)
            ok = False
    anchor = pt.get("anchor")
    if (not isinstance(anchor, list) or len(anchor) != 2
            or not all(isinstance(c, int) and c >= 0 for c in anchor)):
        fail(path, f"{where}: 'anchor' is not a [u, v] coordinate", errors)
        ok = False
    if not ok:
        return False
    for key in ("energy", "mttf", "cycles"):
        if not pt[key] > 0:
            fail(path, f"{where}: '{key}' must be positive, got {pt[key]}",
                 errors)
            ok = False
    for key in ("tiles", "pe_allocations"):
        if pt[key] < 1:
            fail(path, f"{where}: '{key}' must be >= 1, got {pt[key]}", errors)
            ok = False
    return ok


def check_layer(path: str, index: int, layer, errors: list) -> None:
    where = f"layers[{index}]"
    if not isinstance(layer, dict) or not isinstance(layer.get("layer"), str):
        fail(path, f"{where}: missing 'layer' name", errors)
        return
    points = layer.get("points")
    if not isinstance(points, list) or not points:
        fail(path, f"{where} ('{layer['layer']}'): empty or missing front",
             errors)
        return
    where = f"layers[{index}] ('{layer['layer']}')"
    clean = [pt for p, pt in enumerate(points)
             if check_point(path, f"{where} point {p}", pt, errors)]
    if len(clean) != len(points):
        return
    selected = sum(1 for pt in points if pt["selected"])
    if selected != 1:
        fail(path, f"{where}: {selected} selected points, expected exactly 1",
             errors)
    for p in range(1, len(points)):
        if points[p]["energy"] < points[p - 1]["energy"]:
            fail(path, f"{where}: points not in canonical order (energy "
                       f"decreases at index {p})", errors)
            break
    for a in range(len(points)):
        for b in range(len(points)):
            if a != b and dominates(points[a], points[b]):
                fail(path, f"{where}: point {a} dominates point {b} — not a "
                           f"Pareto front", errors)
                return


def load_and_check(path: str, errors: list) -> dict | None:
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        fail(path, str(exc), errors)
        return None
    if doc.get("schema_version") != SCHEMA_VERSION:
        fail(path, f"schema_version is {doc.get('schema_version')!r}, "
                   f"expected {SCHEMA_VERSION}", errors)
        return None
    if not isinstance(doc.get("manifest"), dict):
        fail(path, "missing manifest object", errors)
        return None
    pareto = doc.get("pareto")
    if not isinstance(pareto, dict):
        fail(path, "missing pareto object", errors)
        return None
    for key in ("network", "objective", "objective_weights", "array_state"):
        if not isinstance(pareto.get(key), str) or not pareto[key]:
            fail(path, f"pareto.{key} missing or empty", errors)
    live = pareto.get("live_pes")
    if not isinstance(live, int) or isinstance(live, bool) or live < 1:
        fail(path, f"pareto.live_pes must be a positive integer, got "
                   f"{live!r}", errors)
    layers = pareto.get("layers")
    if not isinstance(layers, list) or not layers:
        fail(path, "pareto.layers missing or empty", errors)
        return None
    for index, layer in enumerate(layers):
        check_layer(path, index, layer, errors)
    return pareto


def selected_mttf(pareto: dict) -> dict:
    """layer name -> MTTF of the selected front member."""
    return {
        layer["layer"]: next(pt["mttf"] for pt in layer["points"]
                             if pt["selected"])
        for layer in pareto["layers"]
    }


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="+", metavar="FILE")
    ap.add_argument("--same-front", action="store_true",
                    help="two FILEs: their pareto objects must be identical "
                         "(manifests ignored) — the determinism check")
    ap.add_argument("--assert-selected-mttf-improves", action="store_true",
                    help="two FILEs (energy run, lifetime-leaning run): per "
                         "layer, FILE2's selected MTTF must be >= FILE1's")
    args = ap.parse_args()
    if (args.same_front or args.assert_selected_mttf_improves) \
            and len(args.files) != 2:
        ap.error("cross-file modes take exactly two FILEs")

    errors: list = []
    docs = [load_and_check(path, errors) for path in args.files]
    if not errors and args.same_front:
        a, b = docs
        if a != b:
            fail(args.files[1], f"pareto object differs from "
                 f"{args.files[0]} — determinism violation", errors)
    if not errors and args.assert_selected_mttf_improves:
        base, cur = (selected_mttf(doc) for doc in docs)
        if sorted(base) != sorted(cur):
            fail(args.files[1], "layer sets differ between the two reports",
                 errors)
        else:
            for name, mttf in base.items():
                if cur[name] < mttf:
                    fail(args.files[1], f"layer '{name}': selected MTTF "
                         f"{cur[name]:.6g} < energy run's {mttf:.6g}", errors)

    for msg in errors:
        print(f"FAILURE: {msg}")
    if errors:
        print(f"{len(errors)} violation(s)")
        return 1
    mode = ("same-front" if args.same_front
            else "mttf" if args.assert_selected_mttf_improves else "schema")
    print(f"check_pareto OK ({len(args.files)} file(s), {mode} mode)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
