#!/usr/bin/env python3
"""rota_lint: mechanical repo-specific rules for the rota source tree.

Run from the repository root (the `lint` CMake/CI target does):

    python3 tools/rota_lint.py [--root DIR]

Rules enforced (each can be suppressed on a specific line with a trailing
`// rota-lint: allow(<rule>)` comment):

  rng          No rand()/srand()/std::mt19937/std::random_device or other
               unseeded/non-deterministic RNG outside src/util/rng.hpp.
               Simulation results must be bit-reproducible per seed.
  float-wear   No `float` anywhere in src/wear/: wear accumulators are
               int64 (counts) or double (derived ratios); 24-bit float
               mantissas silently lose allocation counts.
  pragma-once  Every header's first line is `#pragma once`.
  pre-require  Every function whose doc comment documents a `\\pre`
               contract carries a ROTA_REQUIRE in its definition (found in
               the header itself or the paired .cpp). Pure-virtual
               declarations are exempt (the contract binds overriders).
  log-discipline
               No bare std::cout/std::cerr/std::clog/printf in src/
               library code: libraries report through the structured
               obs::EventLog (or metrics / traces / returned strings);
               only the process entry point (src/cli/main.cpp) and the
               obs terminal sinks (progress, the EventLog stderr echo)
               talk to the process-global streams.
  api-no-throw No `throw` statement in a header that declares part of the
               versioned public API (any header containing `namespace
               rota::api`). v1 entry points report data errors through
               Result<T>; exceptions are an implementation detail of the
               historical surface and must not leak into the facade.
  determinism  Serialized results must be a pure function of the inputs
               and the seed. Three sub-checks: (a) no wall-clock reads
               (system_clock, time(), gettimeofday, gmtime/localtime)
               outside src/obs/manifest.cpp — the one place run metadata
               legitimately records the time of day; (b) no range-for
               over a std::unordered_{map,set} declared in the same file —
               iteration order varies across libstdc++ versions and seeds,
               so anything it feeds (output, accumulation into floats,
               schedules) can drift; iterate sorted keys instead; (c) no
               std::map/std::set keyed on a pointer or uintptr_t —
               address-based ordering changes run to run under ASLR.
  signal-safety
               Bodies of functions registered as signal handlers (via
               `sa_handler =` or `signal(SIG…, f)`) may only call the
               async-signal-safe whitelist: _exit/_Exit/abort/raise/kill/
               signal/write plus lock-free std::atomic member functions.
               Everything else (malloc, iostreams, mutexes, even fprintf)
               can deadlock or corrupt state when the signal lands inside
               the allocator or a locked region.
  simd-isolation
               No vendor intrinsics header (`<immintrin.h>`, x86intrin,
               arm_neon, ...) outside src/kern/. All SIMD lives behind
               the dispatched rota::kern batch API, so the scalar/AVX2
               bit-identity contract (DESIGN.md §14) is testable and
               enforced in exactly one place.
  api-noexcept Declarations in a versioned-API header (`namespace
               rota::api`) that return Result<T> must be marked noexcept:
               the Result contract is "errors come back as values", and a
               missing noexcept lets an implementation exception escape
               through the facade unannounced.
  mapper-objective
               Every sched::Mapper construction names a sched::ObjectiveSpec.
               The objective-less constructor is a [[deprecated]] shim that
               pins the legacy energy objective; new call sites must say
               which objective they mean (ObjectiveSpec{} for energy) so
               manifests, cache fingerprints and bench comparisons carry
               the right provenance. src/sched/mapper.{hpp,cpp} (the shim's
               own declaration/definition) are exempt.

Header self-containment is checked by the CMake `rota_header_checks`
target, which compiles every src/ header as a standalone TU. Clang's
-Wthread-safety (the `thread-safety` CMake preset) covers lock
discipline; this linter covers what the type system cannot see.

With `--compile-db PATH` (a compile_commands.json), only .cpp files that
appear in the database are scanned — headers are always scanned — so the
lint run matches what the build actually compiles.

Exit status: 0 when clean, 1 when any rule fires, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

SCAN_DIRS = ("src", "bench", "tests", "examples", "tools")
CPP_SUFFIXES = {".cpp", ".hpp"}

RNG_PATTERN = re.compile(
    r"\b(?:std::)?(?:rand|srand|rand_r|drand48|mt19937(?:_64)?|"
    r"random_device|default_random_engine|minstd_rand0?|knuth_b)\b"
)
FLOAT_PATTERN = re.compile(r"\bfloat\b")
LOG_PATTERN = re.compile(
    r"\bstd::(?:cout|cerr|clog)\b|\b(?:f?printf|puts|fputs)\s*\(")
# Only the process entry point (main.cpp's fatal-error reporting) and the
# two obs sinks whose whole job is terminal rendering (the TTY progress
# line, the EventLog stderr echo) may touch the global streams. Everything
# else — including the rest of src/cli — reports through obs::EventLog /
# metrics / a caller-supplied std::ostream.
LOG_ALLOWED = (
    Path("src") / "cli" / "main.cpp",
    Path("src") / "obs" / "progress.cpp",
    Path("src") / "obs" / "event_log.cpp",
)
ALLOW_PATTERN = re.compile(r"//\s*rota-lint:\s*allow\(([a-z-]+)\)")
PRE_TAG = re.compile(r"[\\@]pre\b")
FUNC_NAME = re.compile(r"([A-Za-z_]\w*)\s*\(")

# --- determinism rule ---------------------------------------------------
WALL_CLOCK_PATTERN = re.compile(
    r"\bsystem_clock\b|\bgettimeofday\s*\(|\bclock_gettime\s*\(|"
    r"\btime\s*\(\s*(?:nullptr|NULL|0\s*\))|"
    r"\b(?:localtime|gmtime)(?:_r|_s)?\s*\(|\bstrftime\s*\(")
# The run manifest is the one artifact whose job is recording the time of
# day; everything else must stay a pure function of inputs and seed.
WALL_CLOCK_ALLOWED = (Path("src") / "obs" / "manifest.cpp",)
UNORDERED_DECL = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<")
RANGE_FOR = re.compile(r"\bfor\s*\([^();]*:\s*([^();]+)\)")
PTR_KEYED_PATTERN = re.compile(
    r"\bstd::(?:map|set)\s*<\s*(?:const\s+)?"
    r"(?:[A-Za-z_][\w:]*(?:<[^<>]*>)?\s*\*|(?:std::)?uintptr_t\b)")

# --- signal-safety rule -------------------------------------------------
HANDLER_REG = re.compile(
    r"\bsa_handler\s*=\s*&?\s*([A-Za-z_]\w*)|"
    r"\bsignal\s*\(\s*SIG\w+\s*,\s*&?\s*([A-Za-z_]\w*)\s*\)")
# POSIX async-signal-safe calls this codebase has a use for, plus the
# member functions of lock-free std::atomic (safe by [support.signal]).
SIGNAL_SAFE_CALLS = frozenset({
    "_exit", "_Exit", "abort", "raise", "kill", "signal", "write",
    "exchange", "store", "load", "fetch_add", "fetch_sub", "fetch_or",
    "fetch_and", "fetch_xor", "compare_exchange_weak",
    "compare_exchange_strong", "test_and_set", "clear",
})
# Keywords and functional-cast type names `(\w+)\s*\(` also matches.
SIGNAL_SAFE_KEYWORDS = frozenset({
    "if", "while", "for", "switch", "return", "sizeof", "alignof",
    "defined", "int", "long", "short", "unsigned", "signed", "bool",
    "char", "void", "auto", "decltype", "static_assert",
})

# --- api-noexcept rule --------------------------------------------------
RESULT_RETURN = re.compile(r"\bResult\s*<")

# --- mapper-objective rule ----------------------------------------------
# A Mapper *construction*: "Mapper name(" or "Mapper name{". The \b-free
# left guard keeps RsMapper (its own class, no objective) out. Member
# declarations like "sched::Mapper mapper_;" don't match (no open bracket),
# and mem-initializer construction "mapper_(...)" carries its arguments on
# the same statement, which the joined-statement scan below covers.
MAPPER_CTOR = re.compile(
    r"(?<![A-Za-z0-9_])(?:sched::)?Mapper\s+\w+\s*[({]|"
    r"(?<![A-Za-z0-9_])mapper_\s*\(")
MAPPER_EXEMPT = (
    Path("src") / "sched" / "mapper.hpp",
    Path("src") / "sched" / "mapper.cpp",
)

# --- simd-isolation rule ------------------------------------------------
# Vendor intrinsics headers: immintrin.h and friends (xmmintrin, emmintrin,
# avxintrin, x86intrin, arm_neon, ...). Everything outside src/kern/ must
# go through the dispatched rota::kern batch API so the scalar/AVX2
# bit-identity contract stays enforceable in one place.
INCLUDE_LINE = re.compile(r"^\s*#\s*include\b")
INTRIN_INCLUDE = re.compile(
    r'^\s*#\s*include\s*[<"](?:\w*intrin|arm_neon|arm_sve)\.h[>"]')


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving newlines so
    line numbers survive. Good enough for the token-level rules here."""
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            seg = text[i : j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in seg))
            i = j + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            out.append(quote + " " * (j - i - 1) + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


class Linter:
    def __init__(self, root: Path, compile_db: set[Path] | None = None):
        self.root = root
        self.compile_db = compile_db
        self.failures: list[str] = []

    def fail(self, path: Path, line: int, rule: str, msg: str) -> None:
        rel = path.relative_to(self.root)
        self.failures.append(f"{rel}:{line}: [{rule}] {msg}")

    def allowed(self, raw_lines: list[str], lineno: int, rule: str) -> bool:
        if lineno - 1 >= len(raw_lines):
            return False
        m = ALLOW_PATTERN.search(raw_lines[lineno - 1])
        return bool(m) and m.group(1) == rule

    # ------------------------------------------------------------- rules --

    def check_rng(self, path: Path, stripped: str, raw: list[str]) -> None:
        if path == self.root / "src" / "util" / "rng.hpp":
            return
        for lineno, line in enumerate(stripped.splitlines(), 1):
            if RNG_PATTERN.search(line) and not self.allowed(raw, lineno, "rng"):
                self.fail(path, lineno, "rng",
                          "non-deterministic/unseeded RNG; use "
                          "rota::util::SplitMix64 (src/util/rng.hpp)")

    def check_float_wear(self, path: Path, stripped: str,
                         raw: list[str]) -> None:
        if self.root / "src" / "wear" not in path.parents:
            return
        for lineno, line in enumerate(stripped.splitlines(), 1):
            if FLOAT_PATTERN.search(line) and not self.allowed(
                    raw, lineno, "float-wear"):
                self.fail(path, lineno, "float-wear",
                          "float in wear accounting; use std::int64_t for "
                          "counters or double for derived ratios")

    def check_log_discipline(self, path: Path, stripped: str,
                             raw: list[str]) -> None:
        if self.root / "src" not in path.parents:
            return
        rel = path.relative_to(self.root)
        for prefix in LOG_ALLOWED:
            if rel == prefix or prefix in rel.parents:
                return
        for lineno, line in enumerate(stripped.splitlines(), 1):
            if LOG_PATTERN.search(line) and not self.allowed(
                    raw, lineno, "log-discipline"):
                self.fail(path, lineno, "log-discipline",
                          "library code must not write to global streams; "
                          "report via rota::obs or a caller-supplied "
                          "std::ostream")

    def check_api_no_throw(self, path: Path, stripped: str,
                           raw: list[str]) -> None:
        """Versioned-API headers must be exception-free: entry points
        return Result<T> (DESIGN.md §10)."""
        if path.suffix != ".hpp":
            return
        if not re.search(r"\bnamespace\s+rota::api\b", stripped):
            return
        for lineno, line in enumerate(stripped.splitlines(), 1):
            if re.search(r"\bthrow\b", line) and not self.allowed(
                    raw, lineno, "api-no-throw"):
                self.fail(path, lineno, "api-no-throw",
                          "public api::v1 headers must not throw; return "
                          "util::Result<T> instead")

    def check_determinism(self, path: Path, stripped: str,
                          raw: list[str]) -> None:
        """Wall-clock reads, unordered-container iteration and
        address-keyed ordering all make output depend on something other
        than the inputs and the seed."""
        rel = path.relative_to(self.root)
        unordered = self._unordered_names(stripped)
        for lineno, line in enumerate(stripped.splitlines(), 1):
            if self.allowed(raw, lineno, "determinism"):
                continue
            if rel not in WALL_CLOCK_ALLOWED and WALL_CLOCK_PATTERN.search(
                    line):
                self.fail(path, lineno, "determinism",
                          "wall-clock read; results must be a pure "
                          "function of inputs and seed (run metadata "
                          "belongs in obs/manifest.cpp)")
            for m in RANGE_FOR.finditer(line):
                idents = re.findall(r"[A-Za-z_]\w*", m.group(1))
                if idents and idents[-1] in unordered:
                    self.fail(path, lineno, "determinism",
                              f"range-for over unordered container "
                              f"`{idents[-1]}`; iteration order is not "
                              "deterministic — iterate sorted keys (or "
                              "copy out and sort) before anything "
                              "order-sensitive")
            if PTR_KEYED_PATTERN.search(line):
                self.fail(path, lineno, "determinism",
                          "std::map/std::set keyed on an address; "
                          "pointer order changes run to run under ASLR "
                          "— key on a stable id instead")

    def check_signal_safety(self, path: Path, stripped: str,
                            raw: list[str]) -> None:
        """Registered signal handlers may only call the async-signal-safe
        whitelist (POSIX set + lock-free atomic members)."""
        handlers = set()
        for m in HANDLER_REG.finditer(stripped):
            name = m.group(1) or m.group(2)
            if name not in ("SIG_IGN", "SIG_DFL"):
                handlers.add(name)
        for name in sorted(handlers):
            span = self._find_body_span(stripped, name)
            if span is None:
                continue  # defined elsewhere; its own file is checked
            body, body_line = span
            for lineno, line in enumerate(body.splitlines(), body_line):
                for call in re.finditer(r"([A-Za-z_]\w*)\s*\(", line):
                    ident = call.group(1)
                    if (ident in SIGNAL_SAFE_CALLS
                            or ident in SIGNAL_SAFE_KEYWORDS):
                        continue
                    if self.allowed(raw, lineno, "signal-safety"):
                        continue
                    self.fail(path, lineno, "signal-safety",
                              f"`{ident}` called inside signal handler "
                              f"`{name}` is not async-signal-safe; "
                              "handlers may only touch lock-free "
                              "atomics and the _exit/raise/write set")

    def check_simd_isolation(self, path: Path, stripped: str,
                             raw: list[str]) -> None:
        """SIMD intrinsics live in src/kern/ only; everywhere else uses
        the dispatched batch kernels (DESIGN.md §14)."""
        if self.root / "src" / "kern" in path.parents:
            return
        # The stripped text blanks quoted-form includes (they look like
        # string literals), so gate on the stripped line being a real
        # include directive and match the header name on the raw line.
        for lineno, line in enumerate(stripped.splitlines(), 1):
            if not INCLUDE_LINE.match(line):
                continue
            if INTRIN_INCLUDE.match(raw[lineno - 1]) and not self.allowed(
                    raw, lineno, "simd-isolation"):
                self.fail(path, lineno, "simd-isolation",
                          "vendor intrinsics header included outside "
                          "src/kern/; use the rota::kern batch API so the "
                          "scalar/SIMD bit-identity contract is enforced "
                          "in one place")

    def check_api_noexcept(self, path: Path, stripped: str,
                           raw: list[str]) -> None:
        """Result<T>-returning declarations in versioned-API headers must
        be noexcept — the facade's contract is errors-as-values."""
        if path.suffix != ".hpp":
            return
        if not re.search(r"\bnamespace\s+rota::api\b", stripped):
            return
        for m in RESULT_RETURN.finditer(stripped):
            line_start = stripped.rfind("\n", 0, m.start()) + 1
            j = m.end()
            while j < len(stripped) and stripped[j] not in ";{":
                j += 1
            decl = stripped[line_start:j]
            if "(" not in decl or decl.lstrip().startswith("using"):
                continue  # alias or non-function use, not an entry point
            lineno = stripped.count("\n", 0, m.start()) + 1
            if self.allowed(raw, lineno, "api-noexcept"):
                continue
            if "noexcept" not in decl:
                fn = FUNC_NAME.search(decl)
                label = f"`{fn.group(1)}`" if fn else "declaration"
                self.fail(path, lineno, "api-noexcept",
                          f"{label} returns Result<T> but is not "
                          "noexcept; the v1 surface reports every error "
                          "as a value, so mark it noexcept and catch "
                          "internally")

    def check_mapper_objective(self, path: Path, stripped: str,
                               raw: list[str]) -> None:
        """Every sched::Mapper construction must name an ObjectiveSpec;
        the objective-less ctor is a deprecated shim."""
        rel = path.relative_to(self.root)
        if rel in MAPPER_EXEMPT:
            return
        lines = stripped.splitlines()
        for m in MAPPER_CTOR.finditer(stripped):
            lineno = stripped.count("\n", 0, m.start()) + 1
            if self.allowed(raw, lineno, "mapper-objective"):
                continue
            # The construction statement: this line joined with its
            # continuations until the terminating ';' (or a small cap —
            # real call sites fit in a handful of lines).
            stmt = ""
            for j in range(lineno - 1, min(lineno + 5, len(lines))):
                stmt += lines[j]
                if ";" in lines[j]:
                    break
            if "bjective" not in stmt:
                self.fail(path, lineno, "mapper-objective",
                          "sched::Mapper construction without an "
                          "ObjectiveSpec uses the deprecated energy-shim "
                          "ctor; pass sched::ObjectiveSpec{} (or the "
                          "objective you mean) so provenance is explicit")

    def check_pragma_once(self, path: Path, raw: list[str]) -> None:
        if path.suffix != ".hpp":
            return
        first = raw[0].strip() if raw else ""
        if first != "#pragma once":
            self.fail(path, 1, "pragma-once",
                      "header must start with `#pragma once`")

    def check_pre_require(self, path: Path, text: str, stripped: str,
                          raw: list[str]) -> None:
        """Each \\pre-documented declaration must have ROTA_REQUIRE in its
        definition (inline in the header or in the paired .cpp)."""
        if path.suffix != ".hpp":
            return
        lines = text.splitlines()
        for lineno, line in enumerate(lines, 1):
            if not PRE_TAG.search(line):
                continue
            if "///" not in line and "*" not in line.lstrip()[:2]:
                continue  # \pre outside a doc comment
            decl, decl_line = self._declaration_after(lines, lineno)
            if decl is None:
                self.fail(path, lineno, "pre-require",
                          "could not find the declaration this \\pre "
                          "documents")
                continue
            if re.search(r"=\s*0\s*;", decl):
                continue  # pure virtual: contract binds the overriders
            m = FUNC_NAME.search(decl)
            if not m:
                self.fail(path, decl_line, "pre-require",
                          "\\pre is not attached to a function declaration")
                continue
            name = m.group(1)
            if self.allowed(raw, decl_line, "pre-require"):
                continue
            if not self._definition_has_require(path, name):
                self.fail(path, decl_line, "pre-require",
                          f"`{name}` documents a \\pre but its definition "
                          "has no ROTA_REQUIRE")

    # ----------------------------------------------------------- helpers --

    @staticmethod
    def _declaration_after(lines: list[str],
                           lineno: int) -> tuple[str | None, int]:
        """The declaration is the doc comment's own line (trailing \\pre) or
        the first non-comment lines after the comment block, joined until a
        `;` or `{`."""
        inline = re.sub(r"///.*$|/\*.*?\*/", "", lines[lineno - 1]).strip()
        if FUNC_NAME.search(inline):
            return inline, lineno
        decl: list[str] = []
        start = 0
        for j in range(lineno, min(lineno + 12, len(lines))):
            s = lines[j].strip()
            if not decl and (s.startswith("///") or s.startswith("*")
                             or s.startswith("//") or not s):
                continue
            decl.append(s)
            start = start or j + 1
            if s.endswith((";", "{")) or "{" in s:
                return " ".join(decl), start
        return (None, lineno) if not decl else (" ".join(decl), start)

    def _definition_has_require(self, header: Path, name: str) -> bool:
        candidates = [header, header.with_suffix(".cpp")]
        candidates += sorted(p for p in header.parent.glob("*.cpp")
                             if p not in candidates)
        for src in candidates:
            if not src.exists():
                continue
            body = self._find_body(src.read_text(encoding="utf-8"), name)
            if body is None:
                continue
            # Direct check, or delegation to a local validate*() helper
            # (idiom used by rwl_math.cpp and monte_carlo.cpp).
            return bool(re.search(r"ROTA_REQUIRE|\bvalidate\w*\s*\(", body))
        return False  # no definition found anywhere we can see

    @staticmethod
    def _unordered_names(stripped: str) -> set[str]:
        """Identifiers declared in this file with an unordered container
        type (members, locals, parameters)."""
        names: set[str] = set()
        for m in UNORDERED_DECL.finditer(stripped):
            depth, i = 1, stripped.find("<", m.start()) + 1
            while i < len(stripped) and depth:
                if stripped[i] == "<":
                    depth += 1
                elif stripped[i] == ">":
                    depth -= 1
                i += 1
            dm = re.match(r"\s*[&*]?\s*([A-Za-z_]\w*)", stripped[i:i + 160])
            if dm and dm.group(1) not in ("const", "constexpr"):
                names.add(dm.group(1))
        return names

    @staticmethod
    def _find_body_span(text: str, name: str) -> tuple[str, int] | None:
        """Like _find_body, but also returns the 1-based line of the
        opening brace (for per-line diagnostics)."""
        for m in re.finditer(r"\b%s\s*\(" % re.escape(name), text):
            depth, i = 1, m.end()
            while i < len(text) and depth:
                if text[i] == "(":
                    depth += 1
                elif text[i] == ")":
                    depth -= 1
                i += 1
            j = i
            while j < len(text) and text[j] not in ";{":
                j += 1
            if j >= len(text) or text[j] == ";":
                continue
            depth, k = 1, j + 1
            while k < len(text) and depth:
                if text[k] == "{":
                    depth += 1
                elif text[k] == "}":
                    depth -= 1
                k += 1
            return text[j:k], text.count("\n", 0, j) + 1
        return None

    @staticmethod
    def _find_body(text: str, name: str) -> str | None:
        """Brace-matched body of the first definition of `name` (skips
        declarations, which end in `;` before any `{`)."""
        for m in re.finditer(r"\b%s\s*\(" % re.escape(name), text):
            depth, i = 1, m.end()
            while i < len(text) and depth:
                if text[i] == "(":
                    depth += 1
                elif text[i] == ")":
                    depth -= 1
                i += 1
            # Scan past cv-qualifiers/noexcept/initializer list to `;` or `{`.
            j = i
            while j < len(text) and text[j] not in ";{":
                j += 1
            if j >= len(text) or text[j] == ";":
                continue
            depth, k = 1, j + 1
            while k < len(text) and depth:
                if text[k] == "{":
                    depth += 1
                elif text[k] == "}":
                    depth -= 1
                k += 1
            return text[j:k]
        return None

    # -------------------------------------------------------------- run --

    def run(self) -> int:
        files = []
        for d in SCAN_DIRS:
            base = self.root / d
            if base.is_dir():
                files += sorted(p for p in base.rglob("*")
                                if p.suffix in CPP_SUFFIXES)
        if not files:
            print("rota_lint: no sources found — wrong --root?",
                  file=sys.stderr)
            return 2
        if self.compile_db is not None:
            # Headers are always scanned (the DB never lists them); .cpp
            # files are restricted to what the build actually compiles.
            files = [p for p in files
                     if p.suffix != ".cpp" or p.resolve() in self.compile_db]
        for path in files:
            text = path.read_text(encoding="utf-8")
            raw = text.splitlines()
            stripped = strip_comments_and_strings(text)
            self.check_rng(path, stripped, raw)
            self.check_float_wear(path, stripped, raw)
            self.check_log_discipline(path, stripped, raw)
            self.check_api_no_throw(path, stripped, raw)
            self.check_determinism(path, stripped, raw)
            self.check_signal_safety(path, stripped, raw)
            self.check_simd_isolation(path, stripped, raw)
            self.check_api_noexcept(path, stripped, raw)
            self.check_mapper_objective(path, stripped, raw)
            self.check_pragma_once(path, raw)
            self.check_pre_require(path, text, stripped, raw)
        if self.failures:
            print("\n".join(self.failures))
            print(f"rota_lint: {len(self.failures)} failure(s) in "
                  f"{len(files)} files", file=sys.stderr)
            return 1
        print(f"rota_lint: OK ({len(files)} files)")
        return 0


def load_compile_db(path: Path) -> set[Path]:
    """Absolute paths of every .cpp a compile_commands.json compiles."""
    try:
        entries = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as err:
        raise SystemExit(f"rota_lint: cannot read compile db {path}: {err}")
    files: set[Path] = set()
    for entry in entries:
        f = Path(entry["file"])
        if not f.is_absolute():
            f = Path(entry.get("directory", ".")) / f
        files.add(f.resolve())
    return files


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--root", type=Path, default=Path(__file__).parent.parent,
                    help="repository root (default: parent of tools/)")
    ap.add_argument("--compile-db", type=Path, default=None, metavar="PATH",
                    help="compile_commands.json; restricts .cpp scanning to "
                         "files the build compiles (headers always scanned)")
    args = ap.parse_args()
    root = args.root.resolve()
    if not (root / "src").is_dir():
        print(f"rota_lint: {root} does not look like the repo root",
              file=sys.stderr)
        return 2
    db = load_compile_db(args.compile_db) if args.compile_db else None
    return Linter(root, db).run()


if __name__ == "__main__":
    sys.exit(main())
