#!/usr/bin/env python3
"""Validate a RoTA OpenMetrics snapshot exposition.

Checks the subset of the OpenMetrics text format that
obs::snapshot_openmetrics emits:

  * every metric family is declared with `# TYPE <name> <type>` before any
    of its samples, exactly once, with a [a-zA-Z0-9_:] name;
  * counter samples carry the `_total` suffix; summary samples are the
    quantile-labelled series plus `_sum` / `_count`; gauges are bare;
  * every value parses as a float; counts are non-negative integers;
    quantile labels are floats in [0, 1];
  * the exposition ends with `# EOF` and nothing after it;
  * the self-describing envelope gauges (rota_snapshot_schema_version,
    rota_snapshot_seq, rota_uptime_seconds) are present.

With --json SNAPSHOT.json it additionally cross-checks the exposition
against the JSON twin the SnapshotPublisher wrote from the same capture:
schema version and seq must match exactly, every counter / gauge /
histogram in the JSON must appear in the OM rendering with the same value
(counters exact, floats to 1e-9 relative), and no unexplained families may
remain.

Exit code 0 when valid, 1 with one `error:` line per problem otherwise.
Run with --selftest to exercise the validator against built-in vectors
(used by the test suite; no file arguments needed).
"""

from __future__ import annotations

import argparse
import json
import math
import re
import sys
from pathlib import Path

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
TYPE_RE = re.compile(r"^# TYPE ([^ ]+) ([a-z]+)$")
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})? (\S+)$")
LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="([^"]*)"$')

KNOWN_TYPES = {"counter", "gauge", "summary", "histogram", "info", "unknown"}
ENVELOPE_GAUGES = (
    "rota_snapshot_schema_version",
    "rota_snapshot_seq",
    "rota_uptime_seconds",
)

# Keep in sync with obs::kSchemaVersion (src/obs/json.hpp).
SCHEMA_VERSION = 2


def mangle(name: str) -> str:
    """Mirror obs::openmetrics_name: charset-mangle and prefix."""
    return "rota_" + re.sub(r"[^a-zA-Z0-9_:]", "_", name)


class Exposition:
    def __init__(self) -> None:
        # family name -> {"type": str, "samples": {suffix_or_label: value}}
        self.families: dict[str, dict] = {}
        self.errors: list[str] = []


def parse_exposition(text: str) -> Exposition:
    exp = Exposition()
    err = exp.errors.append
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    if not lines or lines[-1] != "# EOF":
        err("exposition must end with '# EOF'")
    else:
        lines.pop()

    current: str | None = None
    for lineno, line in enumerate(lines, 1):
        if line == "# EOF":
            err(f"line {lineno}: '# EOF' before end of exposition")
            continue
        if line.startswith("#"):
            m = TYPE_RE.match(line)
            if not m:
                err(f"line {lineno}: unrecognized comment line {line!r}")
                continue
            name, family_type = m.group(1), m.group(2)
            if not NAME_RE.match(name):
                err(f"line {lineno}: invalid metric name {name!r}")
            if family_type not in KNOWN_TYPES:
                err(f"line {lineno}: unknown family type {family_type!r}")
            if name in exp.families:
                err(f"line {lineno}: duplicate TYPE for {name!r}")
                continue
            exp.families[name] = {"type": family_type, "samples": {}}
            current = name
            continue

        m = SAMPLE_RE.match(line)
        if not m:
            err(f"line {lineno}: malformed sample line {line!r}")
            continue
        sample_name, label_text, value_text = m.groups()
        try:
            value = float(value_text)
        except ValueError:
            err(f"line {lineno}: non-numeric value {value_text!r}")
            continue

        family, key = None, None
        for fam, suffix in ((sample_name, ""), (sample_name[: -len("_total")],
                                                "_total") if
                            sample_name.endswith("_total") else (None, None),
                            (sample_name[: -len("_sum")], "_sum") if
                            sample_name.endswith("_sum") else (None, None),
                            (sample_name[: -len("_count")], "_count") if
                            sample_name.endswith("_count") else (None, None)):
            if fam is not None and fam in exp.families:
                family, key = fam, suffix
                break
        if family is None:
            err(f"line {lineno}: sample {sample_name!r} has no TYPE "
                "declaration")
            continue
        if family != current:
            err(f"line {lineno}: sample for {family!r} is interleaved with "
                f"family {current!r}")
        info = exp.families[family]

        labels = {}
        if label_text:
            for part in label_text[1:-1].split(","):
                lm = LABEL_RE.match(part)
                if not lm:
                    err(f"line {lineno}: malformed label {part!r}")
                    continue
                labels[lm.group(1)] = lm.group(2)

        ftype = info["type"]
        if ftype == "counter":
            if key != "_total":
                err(f"line {lineno}: counter sample must be "
                    f"{family}_total, got {sample_name!r}")
            if value < 0 or value != int(value):
                err(f"line {lineno}: counter value must be a non-negative "
                    f"integer, got {value_text}")
            info["samples"]["_total"] = value
        elif ftype == "gauge":
            if key != "":
                err(f"line {lineno}: gauge sample must be bare {family!r}, "
                    f"got {sample_name!r}")
            info["samples"][""] = value
        elif ftype == "summary":
            if key == "" and "quantile" in labels:
                try:
                    q = float(labels["quantile"])
                    if not 0.0 <= q <= 1.0:
                        raise ValueError
                except ValueError:
                    err(f"line {lineno}: quantile label must be a float in "
                        f"[0,1], got {labels['quantile']!r}")
                    continue
                info["samples"]["q" + labels["quantile"]] = value
            elif key in ("_sum", "_count"):
                if key == "_count" and (value < 0 or value != int(value)):
                    err(f"line {lineno}: _count must be a non-negative "
                        f"integer, got {value_text}")
                info["samples"][key] = value
            else:
                err(f"line {lineno}: summary sample {sample_name!r} must be "
                    "quantile-labelled or _sum/_count")
        # other family types: accept any sample shape
    return exp


def close(a: float, b: float) -> bool:
    if math.isnan(a) or math.isnan(b):
        return math.isnan(a) and math.isnan(b)
    return math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-12)


def check_envelope(exp: Exposition) -> None:
    for name in ENVELOPE_GAUGES:
        info = exp.families.get(name)
        if info is None or "" not in info["samples"]:
            exp.errors.append(f"missing envelope gauge {name}")
    info = exp.families.get("rota_snapshot_schema_version")
    if info and not close(info["samples"].get("", -1), SCHEMA_VERSION):
        exp.errors.append(
            f"rota_snapshot_schema_version != {SCHEMA_VERSION}: "
            f"{info['samples'].get('')}")


def cross_check(exp: Exposition, snapshot: dict) -> None:
    err = exp.errors.append
    if snapshot.get("schema_version") != SCHEMA_VERSION:
        err(f"json schema_version != {SCHEMA_VERSION}: "
            f"{snapshot.get('schema_version')}")
    if snapshot.get("kind") != "metrics_snapshot":
        err(f"json kind != metrics_snapshot: {snapshot.get('kind')}")

    seq = exp.families.get("rota_snapshot_seq", {}).get("samples", {}).get("")
    if seq is None or not close(seq, float(snapshot.get("seq", -1))):
        err(f"seq mismatch: om={seq} json={snapshot.get('seq')}")

    explained = set(ENVELOPE_GAUGES)
    for name, entry in snapshot.get("metrics", {}).items():
        om = mangle(name)
        info = exp.families.get(om)
        mtype = entry.get("type")
        if info is None:
            err(f"json metric {name!r} has no OM family {om!r}")
            continue
        explained.add(om)
        samples = info["samples"]
        if mtype == "counter":
            if info["type"] != "counter":
                err(f"{name!r}: json counter but OM {info['type']}")
            elif not close(samples.get("_total", math.nan),
                           float(entry["value"])):
                err(f"{name!r}: counter value mismatch "
                    f"om={samples.get('_total')} json={entry['value']}")
        elif mtype == "gauge":
            if info["type"] != "gauge":
                err(f"{name!r}: json gauge but OM {info['type']}")
            elif not close(samples.get("", math.nan), float(entry["value"])):
                err(f"{name!r}: gauge value mismatch "
                    f"om={samples.get('')} json={entry['value']}")
        elif mtype == "histogram":
            if info["type"] != "summary":
                err(f"{name!r}: json histogram but OM {info['type']}")
                continue
            for field, key in (("p50", "q0.5"), ("p95", "q0.95"),
                               ("p99", "q0.99"), ("sum", "_sum"),
                               ("count", "_count")):
                if not close(samples.get(key, math.nan),
                             float(entry[field])):
                    err(f"{name!r}: {field} mismatch "
                        f"om={samples.get(key)} json={entry[field]}")
        else:
            err(f"json metric {name!r} has unknown type {mtype!r}")
    for name in sorted(set(exp.families) - explained):
        err(f"OM family {name!r} not present in json twin")


def validate(om_text: str, json_text: str | None) -> list[str]:
    exp = parse_exposition(om_text)
    check_envelope(exp)
    if json_text is not None:
        try:
            snapshot = json.loads(json_text)
        except json.JSONDecodeError as e:
            exp.errors.append(f"json twin unparseable: {e}")
        else:
            cross_check(exp, snapshot)
    return exp.errors


# --------------------------------------------------------------- selftest --

VALID_OM = """# TYPE rota_snapshot_schema_version gauge
rota_snapshot_schema_version 2
# TYPE rota_snapshot_seq gauge
rota_snapshot_seq 3
# TYPE rota_uptime_seconds gauge
rota_uptime_seconds 1.25
# TYPE rota_fi_injected_faults counter
rota_fi_injected_faults_total 7
# TYPE rota_svc_queue_depth gauge
rota_svc_queue_depth 0
# TYPE rota_svc_compute_ms summary
rota_svc_compute_ms{quantile="0.5"} 1.5
rota_svc_compute_ms{quantile="0.95"} 2.5
rota_svc_compute_ms{quantile="0.99"} 3.5
rota_svc_compute_ms_sum 10.5
rota_svc_compute_ms_count 4
# EOF
"""

VALID_JSON = json.dumps({
    "schema_version": 2,
    "kind": "metrics_snapshot",
    "seq": 3,
    "uptime_seconds": 1.25,
    "metrics": {
        "fi.injected_faults": {"type": "counter", "value": 7},
        "svc.queue_depth": {"type": "gauge", "value": 0.0},
        "svc.compute_ms": {"type": "histogram", "count": 4, "sum": 10.5,
                           "min": 1.0, "max": 3.5, "p50": 1.5, "p95": 2.5,
                           "p99": 3.5},
    },
})


def selftest() -> int:
    failures = []

    def expect(label: str, errors: list[str], should_fail: bool) -> None:
        if bool(errors) != should_fail:
            failures.append(f"{label}: expected "
                            f"{'errors' if should_fail else 'clean'}, got "
                            f"{errors or 'clean'}")

    expect("valid standalone", validate(VALID_OM, None), False)
    expect("valid with twin", validate(VALID_OM, VALID_JSON), False)
    expect("missing EOF",
           validate(VALID_OM.replace("# EOF\n", ""), None), True)
    expect("sample without TYPE",
           validate(VALID_OM.replace(
               "# TYPE rota_svc_queue_depth gauge\n", ""), None), True)
    expect("counter missing _total",
           validate(VALID_OM.replace("rota_fi_injected_faults_total 7",
                                     "rota_fi_injected_faults 7"), None),
           True)
    expect("negative counter",
           validate(VALID_OM.replace("rota_fi_injected_faults_total 7",
                                     "rota_fi_injected_faults_total -1"),
                    None), True)
    expect("bad quantile",
           validate(VALID_OM.replace('{quantile="0.5"} 1.5',
                                     '{quantile="1.5"} 1.5'), None), True)
    expect("schema drift",
           validate(VALID_OM.replace("rota_snapshot_schema_version 2",
                                     "rota_snapshot_schema_version 1"),
                    None), True)
    expect("twin value drift",
           validate(VALID_OM, VALID_JSON.replace('"value": 7', '"value": 8')),
           True)
    expect("twin missing metric",
           validate(
               VALID_OM + "",
               json.dumps({"schema_version": 2, "kind": "metrics_snapshot",
                           "seq": 3, "uptime_seconds": 1.25,
                           "metrics": {}})), True)
    expect("json seq drift",
           validate(VALID_OM, VALID_JSON.replace('"seq": 3', '"seq": 4')),
           True)

    for f in failures:
        print(f"selftest failure: {f}", file=sys.stderr)
    print(f"selftest: {11 - len(failures)}/11 vectors passed")
    return 1 if failures else 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("om_file", nargs="?", help="OpenMetrics exposition file")
    ap.add_argument("--json", dest="json_file",
                    help="JSON snapshot twin to cross-check against")
    ap.add_argument("--selftest", action="store_true",
                    help="run built-in validation vectors and exit")
    args = ap.parse_args()

    if args.selftest:
        return selftest()
    if not args.om_file:
        ap.error("om_file is required unless --selftest")

    om_text = Path(args.om_file).read_text(encoding="utf-8")
    json_text = (Path(args.json_file).read_text(encoding="utf-8")
                 if args.json_file else None)
    errors = validate(om_text, json_text)
    for e in errors:
        print(f"error: {args.om_file}: {e}", file=sys.stderr)
    if not errors:
        n = len(parse_exposition(om_text).families)
        print(f"ok: {args.om_file}: {n} families"
              + (" (json twin agrees)" if json_text is not None else ""))
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
