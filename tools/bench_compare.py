#!/usr/bin/env python3
"""Compare two BENCH_perf.json reports and gate CI on serial regressions.

Usage: bench_compare.py BASELINE.json CURRENT.json [--threshold PCT]
                        [--improvement-lock]

Both files use the {"schema_version": N, "manifest": ..., "metrics":
{name: {...}}} envelope written by bench_common.hpp. A report whose
schema_version is missing or unknown fails loudly instead of being
field-guessed. For every timing metric in the baseline:

  * serial benchmarks FAIL the run when the current cpu time regresses by
    more than the threshold (default 25%), and FAIL when the metric
    disappeared from the current report;
  * parallel benchmarks only WARN, because their wall/cpu time depends on
    the runner's core count and the committed baseline may come from a
    machine with a different topology. A benchmark counts as parallel
    when its name carries a "Par/N" lane-count suffix with N > 1 —
    "...Par/1" is the single-lane run of the same code and is held to the
    serial gate (the SIMD speedup targets are stated against it);
  * with --improvement-lock, serial benchmarks whose cpu time IMPROVED by
    more than the threshold also FAIL: a speedup that large must be
    locked in by committing the regenerated BENCH_perf.json in the same
    change, so a later regression back to the old level cannot hide
    inside the old, stale baseline.

Timings taken under different mapper objectives measure different
searches, so when the two manifests disagree on `extra["objective.id"]`
(absent = "energy", the historical default) the reports are incomparable:
the tool prints a notice and exits 0 without gating anything.

Metrics that are new in the current report are listed informationally.
Exit status: 0 = OK (possibly with warnings), 1 = at least one failure.
"""

from __future__ import annotations

import argparse
import json
import sys

# The envelope generation this tool understands (obs::kSchemaVersion in
# src/obs/json.hpp). Bump in lockstep with the C++ constant.
SCHEMA_VERSION = 2


def load_report(path: str) -> tuple[dict, str]:
    """(timing metrics, objective id) of one report."""
    with open(path) as f:
        doc = json.load(f)
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        sys.exit(
            f"error: {path}: schema_version is {version!r}, this tool "
            f"understands {SCHEMA_VERSION} — regenerate the report or "
            f"update tools/bench_compare.py in lockstep with "
            f"obs::kSchemaVersion")
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict) or not metrics:
        sys.exit(f"error: {path}: no metrics in report")
    manifest = doc.get("manifest")
    extra = manifest.get("extra", {}) if isinstance(manifest, dict) else {}
    # Reports predating the objective API carry no stamp and were all
    # produced by the energy-objective mapper.
    objective = extra.get("objective.id", "energy")
    return ({
        name: rec
        for name, rec in metrics.items()
        if isinstance(rec, dict) and rec.get("type") == "timing"
    }, objective)


def is_parallel(name: str) -> bool:
    _, sep, lanes = name.rpartition("Par/")
    return bool(sep) and lanes != "1"


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=25.0,
                    help="allowed regression in percent (default 25)")
    ap.add_argument("--improvement-lock", action="store_true",
                    help="also fail serial benchmarks that improved beyond "
                         "the threshold: commit the regenerated baseline to "
                         "lock the speedup in")
    args = ap.parse_args()

    base, base_obj = load_report(args.baseline)
    cur, cur_obj = load_report(args.current)
    if base_obj != cur_obj:
        print(f"notice: mapper objectives differ (baseline '{base_obj}', "
              f"current '{cur_obj}') — the reports time different "
              f"searches and are not comparable; skipping the gate")
        return 0
    limit = 1.0 + args.threshold / 100.0
    lock_limit = 1.0 - args.threshold / 100.0

    failures = []
    warnings = []
    width = max(len(n) for n in set(base) | set(cur))
    print(f"{'benchmark':<{width}}  {'base ms':>10}  {'cur ms':>10}  "
          f"{'ratio':>6}  status")
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            print(f"{name:<{width}}  {'-':>10}  "
                  f"{cur[name]['cpu_ms']:>10.4f}  {'-':>6}  new")
            continue
        if name not in cur:
            msg = f"{name}: present in baseline, missing from current report"
            if is_parallel(name):
                warnings.append(msg)
                status = "WARN missing"
            else:
                failures.append(msg)
                status = "FAIL missing"
            print(f"{name:<{width}}  {base[name]['cpu_ms']:>10.4f}  "
                  f"{'-':>10}  {'-':>6}  {status}")
            continue
        b = base[name]["cpu_ms"]
        c = cur[name]["cpu_ms"]
        ratio = c / b if b > 0 else float("inf")
        status = "ok"
        if ratio > limit:
            msg = (f"{name}: cpu {b:.4f} ms -> {c:.4f} ms "
                   f"({(ratio - 1) * 100:.1f}% > {args.threshold:.0f}% limit)")
            if is_parallel(name):
                warnings.append(msg)
                status = "WARN slower"
            else:
                failures.append(msg)
                status = "FAIL slower"
        elif args.improvement_lock and ratio < lock_limit:
            msg = (f"{name}: cpu {b:.4f} ms -> {c:.4f} ms improved "
                   f"{(1 - ratio) * 100:.1f}% > {args.threshold:.0f}% — "
                   f"commit the regenerated baseline to lock this in")
            if is_parallel(name):
                warnings.append(msg)
                status = "WARN faster"
            else:
                failures.append(msg)
                status = "FAIL unlocked"
        print(f"{name:<{width}}  {b:>10.4f}  {c:>10.4f}  {ratio:>6.2f}  "
              f"{status}")

    for msg in warnings:
        print(f"warning: {msg}")
    for msg in failures:
        print(f"FAILURE: {msg}")
    if failures:
        print(f"{len(failures)} serial regression(s) beyond "
              f"{args.threshold:.0f}%")
        return 1
    print("bench comparison OK"
          + (f" ({len(warnings)} warning(s))" if warnings else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
